(** Request-processing core shared by the daemon, the CLI one-shot
    path, and the tests.

    Totality contract: {!handle_batch} (and therefore {!handle}) never
    raises. A hostile request — oversized input, pathological nesting,
    step-budget exhaustion, anything that makes a front-end raise —
    costs its own request a structured error reply and nothing else.

    Determinism contract: because the daemon and the one-shot path are
    this same module, a daemon running over a 1-job pool replies
    byte-identical to {!handle} called directly (and to the CLI, which
    renders {!predict_one}'s pairs).

    Registry contract: the engine holds a name → model registry in one
    immutable snapshot behind an atomic reference. {!handle_batch}
    reads it once per batch, so in-flight batches finish on the models
    they started with; {!reload}, {!unload} and {!set_default} build a
    new snapshot off the request path and publish it with a single
    atomic store — no request is dropped or served by a half-swapped
    registry, and a failed load leaves the old snapshot serving.

    Eviction: with a mapped-bytes budget set, a load that pushes the
    mapped total over it drops the least-recently-used mapped entry
    (never the default, never the entry just loaded). The evicted
    entry keeps its recorded paths and revives transparently on the
    next request naming it. In-flight batches are safe: they hold the
    old immutable snapshot, which keeps the evicted model's mapping
    alive until they finish. *)

type t

val create :
  ?w2v:Word2vec.Sgns.t ->
  ?w2v_view:Word2vec.Sgns.view ->
  ?storage:Lexkit.Storage.t ->
  ?limits:Lexkit.limits ->
  ?model_path:string ->
  ?w2v_path:string ->
  ?mmap:bool ->
  ?max_mapped_bytes:int ->
  ?max_session_bytes:int ->
  ?name:string ->
  model:Crf.Train.model ->
  unit ->
  t
(** An engine whose registry holds one entry, the default model.
    [limits] are the per-request resource budgets ({!Lexkit.Guard}):
    every request is parsed under them, so one request can exhaust its
    own budget only. Default: the ambient {!Lexkit.current_limits}.
    [model_path]/[w2v_path] record where the models came from — what a
    path-less {!reload} (SIGHUP, bare [{"op":"reload"}]) re-reads.
    [storage] reports how the initial model was loaded (default heap);
    [w2v_view] wins over [w2v] when both are given. [mmap] (default
    true) makes subsequent loads go through the zero-copy
    [load_mapped] loaders; [max_mapped_bytes] (default 0 = unbounded)
    is the eviction budget; [max_session_bytes] (default 0 =
    unbounded) bounds the summed extraction-cache bytes of all edit
    sessions, evicting whole least-recently-used sessions past it
    (an evicted session's next edit answers ["no-session"] — the
    client re-opens); [name] (default ["default"]) names the initial
    entry. *)

val limits : t -> Lexkit.limits

val reloadable : t -> bool
(** Whether a path-less {!reload} has a model path to re-read. *)

val reload :
  t ->
  ?name:string ->
  ?model_path:string ->
  ?w2v_path:string ->
  unit ->
  (string option, Protocol.error) result
(** Load the CRF model (and the word2vec model, when a path is known)
    from disk, validate it, and atomically publish a new registry
    snapshot. [name] absent targets the default entry; a known [name]
    re-loads that entry (reviving it if evicted); an unknown [name]
    creates a new entry and then requires [model_path]. Absent paths
    default to the entry's recorded ones. [Ok note] carries the
    mapped-load downgrade reason when the loader fell back to a heap
    copy (worth a log line). On [Error] ([io-error], [corrupt-model],
    [bad-request]) the old snapshot keeps serving. Thread-safe;
    concurrent registry writers serialize. Never raises. *)

val unload : t -> string -> (unit, Protocol.error) result
(** Drop a registry entry. The default model cannot be unloaded
    ({!set_default} another entry first). *)

val set_default : t -> string -> (unit, Protocol.error) result
(** Make a known entry the default (the one requests without a
    ["model"] field run against). *)

val models : t -> Protocol.model_stat list
(** Per-entry metadata of the current snapshot, in load order. *)

val predict_one :
  t -> lang:Pigeon.Lang.t -> code:string ->
  ((string * string) list, Protocol.error) result
(** parse → extract → MAP-infer one source against the default model;
    [(current_name, predicted_name)] per unknown node, in slot order —
    exactly the pairs the CLI [predict] command prints. *)

val similar :
  ?model:string ->
  t ->
  word:string ->
  k:int ->
  ((string * float) list, Protocol.error) result
(** Nearest neighbors from [model]'s (default: the default entry's)
    word2vec model; an error when that entry has none. Unknown words
    return the empty list. *)

val handle_batch_conn :
  ?pool:Parallel.pool -> t -> (int * Protocol.request) list -> string list
(** One rendered reply line per [(conn, request)] pair, in request
    order. Predict requests resolve their model (reviving evicted
    entries), are parsed under the per-request budgets, then MAP
    inference runs one {!Crf.Train.predict_batch} round per distinct
    model over [pool] (per-graph fallback if a batch round raises).
    Control ops answer inline. Session ops ([open]/[edit]/[close]) are
    keyed by [conn]: sessions are invisible across connections, and a
    batch processes them in list order so an open and its edits
    sequence correctly. Never raises.

    Session extraction is incremental: [open] seeds the session's
    {!Astpath.Cache.t}, each [edit] re-parses the full buffer but
    replays the memoized path-contexts of every unchanged subtree.
    Because the cached stream is byte-identical to from-scratch
    extraction, a session predict reply's prediction fields are
    byte-identical to a one-shot predict of the same buffer. *)

val handle_batch :
  ?pool:Parallel.pool -> t -> Protocol.request list -> string list
(** {!handle_batch_conn} with every request on connection [0] — the
    one-shot CLI path and the tests. *)

val drop_conn : t -> conn:int -> unit
(** Drop every session owned by [conn] (its reader disconnected). *)

val session_stats :
  t -> Protocol.session_stat list * Protocol.cache_stat
(** Live sessions (sorted by connection then name) and the aggregate
    cache counters; the aggregate's evictions include whole sessions
    evicted to the session-bytes budget. *)

val handle : ?pool:Parallel.pool -> t -> Protocol.request -> string
(** [handle t r] = [List.hd (handle_batch t [r])] — the one-shot path
    the byte-identity tests compare the daemon against. *)

val jobs_of_pool : Parallel.pool option -> int
