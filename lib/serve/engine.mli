(** Request-processing core shared by the daemon, the CLI one-shot
    path, and the tests.

    Totality contract: {!handle_batch} (and therefore {!handle}) never
    raises. A hostile request — oversized input, pathological nesting,
    step-budget exhaustion, anything that makes a front-end raise —
    costs its own request a structured error reply and nothing else.

    Determinism contract: because the daemon and the one-shot path are
    this same module, a daemon running over a 1-job pool replies
    byte-identical to {!handle} called directly (and to the CLI, which
    renders {!predict_one}'s pairs).

    Reload contract: the models live in one immutable snapshot behind
    an atomic reference. {!handle_batch} reads it once per batch, so
    in-flight batches finish on the model they started with;
    {!reload} loads and validates new files off the request path and
    publishes them with a single atomic store — no request is dropped
    or served by a half-swapped model pair, and a failed load leaves
    the old snapshot serving. *)

type t

val create :
  ?w2v:Word2vec.Sgns.t ->
  ?limits:Lexkit.limits ->
  ?model_path:string ->
  ?w2v_path:string ->
  model:Crf.Train.model ->
  unit ->
  t
(** [limits] are the per-request resource budgets ({!Lexkit.Guard}):
    every request is parsed under them, so one request can exhaust its
    own budget only. Default: the ambient {!Lexkit.current_limits}.
    [model_path]/[w2v_path] record where the models came from, which
    is what a path-less {!reload} (SIGHUP, bare [{"op":"reload"}])
    re-reads. *)

val limits : t -> Lexkit.limits

val reloadable : t -> bool
(** Whether a path-less {!reload} has a model path to re-read. *)

val reload :
  t -> ?model_path:string -> ?w2v_path:string -> unit ->
  (unit, Protocol.error) result
(** Load the CRF model (and the word2vec model, when a path is known)
    from disk, validate them (checksummed v1/v2/v3 loaders), and
    atomically swap them in. Absent paths default to the last
    successfully loaded ones. On [Error] ([io-error],
    [corrupt-model], [bad-request] when no path is known) the old
    models keep serving. Thread-safe; concurrent reloads serialize.
    Never raises. *)

val predict_one :
  t -> lang:Pigeon.Lang.t -> code:string ->
  ((string * string) list, Protocol.error) result
(** parse → extract → MAP-infer one source; [(current_name,
    predicted_name)] per unknown node, in slot order — exactly the
    pairs the CLI [predict] command prints. *)

val similar :
  t -> word:string -> k:int -> ((string * float) list, Protocol.error) result
(** Nearest neighbors from the word2vec model; an error when none is
    loaded. Unknown words return the empty list. *)

val handle_batch :
  ?pool:Parallel.pool -> t -> Protocol.request list -> string list
(** One rendered reply line per request, in request order. Predict
    requests are parsed under the per-request budgets, then MAP
    inference for the whole batch fans out over [pool] in one
    {!Crf.Train.predict_batch} call (per-graph fallback if the batch
    path raises). Control ops answer inline. Never raises. *)

val handle : ?pool:Parallel.pool -> t -> Protocol.request -> string
(** [handle t r] = [List.hd (handle_batch t [r])] — the one-shot path
    the byte-identity tests compare the daemon against. *)

val jobs_of_pool : Parallel.pool option -> int
