(** Deterministic fault injection for the serve stack.

    Off by default and zero-cost when disabled: the server keeps no
    {!state} and takes no branches beyond one [option] check per hook.
    When enabled (programmatically, or via the [PIGEON_FAULTS]
    environment variable in the CLI), counters — not randomness — pick
    the victims, so a chaos run with a fixed request schedule injects
    the same faults every time.

    Knobs (each [0] = disabled):
    - [pre_batch_delay_ms]: the batcher sleeps this long before every
      inference round (simulates a slow model / saturated pool, makes
      overload reproducible);
    - [engine_error_every]: every Nth inference round raises inside
      the batcher's containment net (the whole batch must answer with
      structured ["internal"] errors and the daemon must stay up);
    - [torn_reply_every]: every Nth reply write emits only a prefix of
      the line, with no newline, and kills the connection (simulates a
      crash mid-write; framing of other connections must be unharmed);
    - [accept_drop_every]: every Nth accepted connection is closed
      before reading anything (simulates accept-time resource
      exhaustion).

    [PIGEON_FAULTS] syntax: comma-separated [key=int] pairs, e.g.
    [PIGEON_FAULTS=delay_ms=5,engine_every=7,torn_every=13,drop_every=11]. *)

type t = {
  pre_batch_delay_ms : int;
  engine_error_every : int;
  torn_reply_every : int;
  accept_drop_every : int;
}

val disabled : t
val enabled : t -> bool

val of_string : string -> (t, string) result
(** Parse the [PIGEON_FAULTS] syntax. Unknown keys and malformed
    pairs are errors (fail fast: a typoed chaos knob that silently
    disables itself would fake a passing run). *)

val of_env : unit -> (t, string) result
(** [of_string] on [PIGEON_FAULTS]; [Ok disabled] when unset/empty. *)

type state
(** Mutable injection counters (thread-safe). *)

val state : t -> state

type kind = Engine_error | Torn_reply | Accept_drop

val fire : state -> kind -> bool
(** Count one event of [kind]; [true] when this one is a victim
    (every Nth, first victim at the Nth event). *)

val pre_batch_delay : state -> unit
(** Sleep [pre_batch_delay_ms]; no-op when 0. *)
