(** Minimal JSON data model for the serve wire protocol.

    The printer is canonical: no whitespace, object fields in
    construction order, integers printed without a fraction — so a
    reply assembled the same way is byte-identical wherever it is
    rendered (the serve determinism contract leans on this). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val parse : string -> (t, string) result
(** Total on arbitrary bytes: either the parsed value or a message
    with a byte offset. Nesting is capped (no stack overflow on
    hostile [[[[…), raw control characters in strings are rejected,
    trailing bytes after the value are an error. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val string_opt : t -> string option
val int_opt : t -> int option

val string_field : string -> t -> string option
val int_field : string -> t -> int option
val bool_field : string -> t -> bool option
