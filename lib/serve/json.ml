(* Minimal JSON for the serve wire protocol. No dependency: the opam
   switch carries no JSON library, and the protocol needs only the
   core data model. The printer emits object fields in construction
   order with no whitespace, so a reply built the same way is the same
   bytes — the basis of the serve byte-identity contract. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral values print as integers (ids, counts); other floats get
   the shortest decimal form that round-trips. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%d" (int_of_float f)
  else if Float.is_nan f || Float.is_integer (f /. 0.) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape_to buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

(* Recursive descent with an explicit depth cap: request lines are
   client-controlled bytes, so `[[[[...` must fail cleanly, never
   overflow the stack. *)
let max_depth = 256

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      match c with
      | '"' -> ()
      | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           incr pos;
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let code =
                 (hex s.[!pos] lsl 12)
                 lor (hex s.[!pos + 1] lsl 8)
                 lor (hex s.[!pos + 2] lsl 4)
                 lor hex s.[!pos + 3]
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8; surrogate pairs are
                  passed through as two 3-byte sequences (WTF-8), which
                  round-trips anything a well-formed client sends. *)
               (match Uchar.of_int code with
               | u -> Buffer.add_utf_8_uchar buf u
               | exception Invalid_argument _ -> fail "bad \\u code point")
           | _ -> fail "bad escape character");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after the value";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at byte %d" msg at)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_opt = function Str s -> Some s | _ -> None
let int_opt = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
      Some (int_of_float f)
  | _ -> None

let string_field key j = Option.bind (member key j) string_opt
let int_field key j = Option.bind (member key j) int_opt
let bool_field key j =
  Option.bind (member key j) (function Bool b -> Some b | _ -> None)
