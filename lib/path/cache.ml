(* Incremental extraction: a session-persistent path-context cache.

   The session owns three intern tables — shared labels (so label ids,
   and with them path hash-cons keys, are stable across builds), the
   identity symbol/key tables behind [Ast.Ident.assign] — plus one
   [Context.Tab.t] rebound to each new index. An edited file re-parsed
   and re-indexed against these tables gives every subtree the edit
   did not touch the same identity id it had before, and that id is
   what cache entries are keyed on.

   Cache unit = a topmost subtree with at most [unit_size] nodes (the
   preorder scan marks a node a unit root when its subtree fits, else
   descends; leaves always fit, so every leaf lands in exactly one
   unit, and preorder makes each unit's leaves a contiguous leaf-rank
   range). Per unit the entry stores, for every local end leaf, the
   packed (start offset, start value id, path id) triples of the
   *internal* pairs — both ends in the unit — that pass the filters,
   in emission order; and for every local leaf the packed (node
   offset, end value id, path id) triples of its semi-path steps that
   stay inside the unit. Filter outcomes for internal pairs are
   structural (the LCA of two in-unit leaves is in the unit; length
   and width are relative quantities), so a structurally identical
   subtree elsewhere — or in a later build — replays the same set.

   Replay preserves the from-scratch emission order exactly. Pairs:
   for each end leaf, [Extract.iter_within] scans starts ascending
   from the feasibility-window edge; starts left of the unit (the
   crossing part) run live, then the internal suffix replays in
   ascending stored order. The stored set equals the live internal
   set because the window edge only ever skips length-filter failures.
   Semi-paths: steps walk bottom-up, so the in-unit prefix replays,
   then the live continuation resumes above the unit root. Replayed
   ids are valid in the current build because values and paths intern
   through session tables ([Context.Tab.rebind]): identical strings
   and identical label-id sequences re-intern to their existing ids.

   The cached stream is therefore byte-identical — same contexts,
   same order, same rendered strings — to a from-scratch
   [Extract.iter_all] with no downsampling. A fingerprint of the
   config flushes the cache when limits change, and an LRU byte
   budget bounds the whole thing. *)

(* Growable flat int buffer for triple rows. *)
type buf = { mutable a : int array; mutable len : int }

let buf_make () = { a = [||]; len = 0 }

let buf_push3 b x y z =
  if b.len + 3 > Array.length b.a then begin
    let a = Array.make (max 12 (2 * Array.length b.a)) 0 in
    Array.blit b.a 0 a 0 b.len;
    b.a <- a
  end;
  b.a.(b.len) <- x;
  b.a.(b.len + 1) <- y;
  b.a.(b.len + 2) <- z;
  b.len <- b.len + 3

let buf_contents b = Array.sub b.a 0 b.len

type entry = {
  e_pairs : int array array;
      (* per local end-leaf rank: internal (start_off, start_vid,
         path_id) triples, ascending start — for a unit entry the
         start offset is a leaf rank within the same unit; for a
         sibling-pair entry it is a leaf rank within the start unit *)
  e_semi : int array array;
      (* per local leaf rank: in-unit (node_off, end_vid, path_id)
         semi-path triples, ascending steps; [||] rows for pair
         entries *)
  e_bytes : int;
  e_paths : int;  (* triples stored *)
  mutable e_used : int;  (* LRU tick *)
}

type recorder = { r_ident : int; r_pairs : buf array; r_semi : buf array }
type state = Hit of entry | Record of recorder

(* Cross-unit pairs between two units whose roots are siblings: the
   LCA of any such pair is the shared parent [P], and the width is the
   child-rank gap of the two roots — one number for the whole unit
   pair. Entry content (which pairs pass, their paths, their values)
   therefore depends only on the two subtree identities and [P]'s
   label, not on where under [P] the units sit: rank shifts from
   inserting or deleting an unrelated sibling never invalidate it.
   Pairs at a rank gap beyond [max_width] are skipped wholesale
   (width fails for every pair), and never recorded — an entry always
   holds the width-passing content. Non-sibling unit pairs fall back
   to live extraction. *)
type pair_state =
  | PHit of entry
  | PRecord of int * int * int * buf array  (* key + rows per end leaf *)
  | PSkip  (* sibling, rank gap > max_width: nothing can pass *)
  | PLive  (* roots not siblings: no constant-width shortcut *)

type t = {
  labels : Intern.Strtab.t;
  syms : Intern.Strtab.t;
  idents : Intern.Keytab.t;
  mutable tab : Context.Tab.t option;
  entries : (int, entry) Hashtbl.t;  (* ident id -> unit entry *)
  pentries : (int * int * int, entry) Hashtbl.t;
      (* (start ident, end ident, parent label id) -> pair entry *)
  unit_size : int;
  max_bytes : int;  (* 0 = unbounded *)
  mutable bytes : int;
  mutable stored : int;  (* triples currently cached *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable replays : int;
  mutable evictions : int;
  mutable cfg : (int * int * bool) option;  (* config fingerprint *)
}

type stats = {
  hits : int;
  misses : int;
  cached_paths : int;
  bytes : int;
  evictions : int;
}

let create ?(unit_size = 192) ?(max_bytes = 0) () =
  if unit_size < 1 then invalid_arg "Cache.create: unit_size must be >= 1";
  if max_bytes < 0 then invalid_arg "Cache.create: max_bytes must be >= 0";
  {
    labels = Intern.Strtab.create ~hint:256 ();
    syms = Intern.Strtab.create ~hint:256 ();
    idents = Intern.Keytab.create ~hint:256 ();
    tab = None;
    entries = Hashtbl.create 64;
    pentries = Hashtbl.create 64;
    unit_size;
    max_bytes;
    bytes = 0;
    stored = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    replays = 0;
    evictions = 0;
    cfg = None;
  }

let labels (t : t) = t.labels
let index (t : t) tree = Ast.Index.build ~labels:t.labels tree
let bytes (t : t) = t.bytes
let replayed (t : t) = t.replays

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    cached_paths = t.stored;
    bytes = t.bytes;
    evictions = t.evictions;
  }

let forget (t : t) e =
  t.bytes <- t.bytes - e.e_bytes;
  t.stored <- t.stored - e.e_paths;
  t.evictions <- t.evictions + 1

let evict_to_budget t =
  while
    t.max_bytes > 0 && t.bytes > t.max_bytes
    && Hashtbl.length t.entries + Hashtbl.length t.pentries > 0
  do
    (* Oldest of both tables goes first; a full scan per eviction is
       fine at cache-unit granularity. *)
    let u_victim =
      Hashtbl.fold
        (fun id e acc ->
          match acc with
          | Some (_, best) when best.e_used <= e.e_used -> acc
          | _ -> Some (id, e))
        t.entries None
    in
    let p_victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.e_used <= e.e_used -> acc
          | _ -> Some (key, e))
        t.pentries None
    in
    match (u_victim, p_victim) with
    | Some (id, ue), Some (_, pe) when ue.e_used <= pe.e_used ->
        Hashtbl.remove t.entries id;
        forget t ue
    | _, Some (key, pe) ->
        Hashtbl.remove t.pentries key;
        forget t pe
    | Some (id, ue), None ->
        Hashtbl.remove t.entries id;
        forget t ue
    | None, None -> ()
  done

let flush t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.pentries;
  t.bytes <- 0;
  t.stored <- 0

let extract t idx (cfg : Config.t) f =
  (match Ast.Index.shared_labels idx with
  | Some l when l == t.labels -> ()
  | _ ->
      invalid_arg
        "Cache.extract: index was not built over this cache's label table \
         (build it with Cache.index)");
  (* Entries are only valid under the limits they were recorded with. *)
  let fp = (cfg.max_length, cfg.max_width, cfg.include_semi_paths) in
  (match t.cfg with
  | Some fp' when fp' = fp -> ()
  | Some _ ->
      flush t;
      t.cfg <- Some fp
  | None -> t.cfg <- Some fp);
  let tab =
    match t.tab with
    | Some tab ->
        Context.Tab.rebind tab idx;
        tab
    | None ->
        let tab = Context.Tab.create idx in
        t.tab <- Some tab;
        tab
  in
  t.clock <- t.clock + 1;
  let ids = Ast.Ident.assign ~syms:t.syms ~tab:t.idents idx in
  let n_nodes = Ast.Index.size idx in
  let leaves = Ast.Index.leaves idx in
  let n = Array.length leaves in
  (* Unit partition: topmost subtrees that fit the budget. The budget
     is capped at half the tree so a small buffer never collapses into
     one whole-tree unit (whose root identity changes on every edit —
     zero sharing); entry contents depend only on the subtree and the
     config, never on the partition that chose it, so the cap is free
     to vary with tree size. *)
  let budget = min t.unit_size (max 1 (n_nodes / 2)) in
  let roots_rev = ref [] and nu = ref 0 in
  let v = ref 0 in
  while !v < n_nodes do
    let sz = Ast.Index.subtree_size idx !v in
    if sz <= budget then begin
      if Ast.Index.subtree_leaf_count idx !v > 0 then begin
        roots_rev := !v :: !roots_rev;
        incr nu
      end;
      v := !v + sz
    end
    else incr v
  done;
  let nu = !nu in
  let u_root = Array.make (max 1 nu) 0 in
  List.iteri (fun i r -> u_root.(nu - 1 - i) <- r) !roots_rev;
  let u_first = Array.init nu (fun i -> Ast.Index.subtree_first_leaf idx u_root.(i)) in
  let u_leaves =
    Array.init nu (fun i -> Ast.Index.subtree_leaf_count idx u_root.(i))
  in
  let unit_of_leaf = Array.make (max 1 n) 0 in
  for i = 0 to nu - 1 do
    for r = u_first.(i) to u_first.(i) + u_leaves.(i) - 1 do
      unit_of_leaf.(r) <- i
    done
  done;
  let state =
    Array.init nu (fun i ->
        let ident = ids.(u_root.(i)) in
        match Hashtbl.find_opt t.entries ident with
        | Some e ->
            e.e_used <- t.clock;
            t.hits <- t.hits + 1;
            Hit e
        | None ->
            (* Two same-ident units in one build both record; finalize
               keeps the first. *)
            t.misses <- t.misses + 1;
            Record
              {
                r_ident = ident;
                r_pairs = Array.init u_leaves.(i) (fun _ -> buf_make ());
                r_semi = Array.init u_leaves.(i) (fun _ -> buf_make ());
              })
  in
  let depth = Ast.Index.depth_array idx in
  let max_length = cfg.max_length and max_width = cfg.max_width in
  (* Sibling-pair states, resolved lazily per (start unit, end unit)
     the first time an end leaf's window reaches into the start unit. *)
  let u_parent = Array.init nu (fun i -> Ast.Index.parent idx u_root.(i)) in
  let u_rank = Array.init nu (fun i -> Ast.Index.child_rank idx u_root.(i)) in
  let u_ident = Array.init nu (fun i -> ids.(u_root.(i))) in
  let label_ids = Ast.Index.label_id_array idx in
  let pstate_tbl = Hashtbl.create 64 in
  (* Flat int key: tuple keys would allocate on every probe of the
     per-end-leaf segment walk. *)
  let pair_state a_u b_u =
    match Hashtbl.find_opt pstate_tbl ((a_u * nu) + b_u) with
    | Some s -> s
    | None ->
        let s =
          let pa = u_parent.(a_u) and pb = u_parent.(b_u) in
          if pa < 0 || pa <> pb then PLive
          else if u_rank.(b_u) - u_rank.(a_u) > max_width then PSkip
          else begin
            let key = (u_ident.(a_u), u_ident.(b_u), label_ids.(pb)) in
            match Hashtbl.find_opt t.pentries key with
            | Some e ->
                e.e_used <- t.clock;
                t.hits <- t.hits + 1;
                PHit e
            | None ->
                t.misses <- t.misses + 1;
                let ia, ib, pl = key in
                PRecord
                  (ia, ib, pl, Array.init u_leaves.(b_u) (fun _ -> buf_make ()))
          end
        in
        Hashtbl.add pstate_tbl ((a_u * nu) + b_u) s;
        s
  in
  (* Pairs phase: mirror of [Extract.iter_within]'s window loop, with
     the internal suffix of each end leaf's window replayed on a unit
     hit and the crossing prefix replayed unit-by-unit on pair hits. *)
  for j = 1 to n - 1 do
    let b = Array.unsafe_get leaves j in
    let db = Array.unsafe_get depth b in
    let feasible i =
      db
      - Array.unsafe_get depth (Ast.Index.lca idx (Array.unsafe_get leaves i) b)
      + 1
      <= max_length
    in
    if feasible (j - 1) then begin
      let lo = ref 0 and hi = ref (j - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if feasible mid then hi := mid else lo := mid + 1
      done;
      let ju = unit_of_leaf.(j) in
      let boundary = u_first.(ju) in
      (* [base] anchors the recorded start offset: the end unit's first
         leaf for internal rows, the start unit's for pair rows. *)
      let live record base i =
        let a = Array.unsafe_get leaves i in
        let l = Ast.Index.lca idx a b in
        let len =
          Array.unsafe_get depth a + db - (2 * Array.unsafe_get depth l)
        in
        if
          len >= 1 && len <= max_length
          && Ast.Index.width_between idx ~lca:l a b <= max_width
        then begin
          let c = Context.make_with_lca ~tab ~lca:l ~start_node:a ~end_node:b in
          (match record with
          | Some buf ->
              buf_push3 buf (i - base) c.Context.start_vid c.Context.path_id
          | None -> ());
          f c
        end
      in
      let replay_row row ~first_leaf =
        let m = Array.length row / 3 in
        if m > 0 then begin
          let b_vid = Context.Tab.vid tab b in
          for k = 0 to m - 1 do
            f
              {
                Context.start_node =
                  Array.unsafe_get leaves (first_leaf + row.(3 * k));
                end_node = b;
                start_vid = row.((3 * k) + 1);
                end_vid = b_vid;
                path_id = row.((3 * k) + 2);
                tab;
              }
          done;
          t.replays <- t.replays + m
        end
      in
      (* Crossing part: starts left of this unit, one segment per start
         unit. A replayed pair row is complete even when the window
         edge falls inside the start unit: starts left of the edge fail
         the length filter (feasibility is monotone), so they were
         never recorded. *)
      let i = ref !lo in
      while !i < boundary do
        let u = unit_of_leaf.(!i) in
        let u_last = u_first.(u) + u_leaves.(u) - 1 in
        (match pair_state u ju with
        | PSkip -> ()
        | PLive ->
            for k = !i to u_last do
              live None 0 k
            done
        | PHit e -> replay_row e.e_pairs.(j - boundary) ~first_leaf:u_first.(u)
        | PRecord (_, _, _, rows) ->
            let record = Some rows.(j - boundary) in
            for k = !i to u_last do
              live record u_first.(u) k
            done);
        i := u_last + 1
      done;
      (* Internal part: replay or record. *)
      (match state.(ju) with
      | Hit e -> replay_row e.e_pairs.(j - boundary) ~first_leaf:boundary
      | Record rc ->
          let record = Some rc.r_pairs.(j - boundary) in
          for i = max !lo boundary to j - 1 do
            live record boundary i
          done)
    end
  done;
  (* Semi-path phase: in-unit prefix replays, continuation above the
     unit root runs live. No downsampling in cached mode. *)
  if cfg.include_semi_paths then begin
    let parent = Ast.Index.parent_array idx in
    for r = 0 to n - 1 do
      let leaf = Array.unsafe_get leaves r in
      let u = unit_of_leaf.(r) in
      let root = u_root.(u) in
      let dl_rel = depth.(leaf) - depth.(root) in
      match state.(u) with
      | Hit e ->
          let row = e.e_semi.(r - u_first.(u)) in
          let m = Array.length row / 3 in
          if m > 0 then begin
            let s_vid = Context.Tab.vid tab leaf in
            for k = 0 to m - 1 do
              f
                {
                  Context.start_node = leaf;
                  end_node = root + row.(3 * k);
                  start_vid = s_vid;
                  end_vid = row.((3 * k) + 1);
                  path_id = row.((3 * k) + 2);
                  tab;
                }
            done;
            t.replays <- t.replays + m
          end;
          if dl_rel < max_length then begin
            let node = ref parent.(root) and steps = ref (dl_rel + 1) in
            while !steps <= max_length && !node <> -1 do
              f
                (Context.make_with_lca ~tab ~lca:!node ~start_node:leaf
                   ~end_node:!node);
              node := parent.(!node);
              incr steps
            done
          end
      | Record rc ->
          let buf = rc.r_semi.(r - u_first.(u)) in
          let node = ref parent.(leaf) and steps = ref 1 in
          while !steps <= max_length && !node <> -1 do
            let c =
              Context.make_with_lca ~tab ~lca:!node ~start_node:leaf
                ~end_node:!node
            in
            if !steps <= dl_rel then
              buf_push3 buf (!node - root) c.Context.end_vid c.Context.path_id;
            f c;
            node := parent.(!node);
            incr steps
          done
    done
  end;
  (* Finalize: freeze this build's recordings (first recording wins
     when one build saw the same identity twice), then enforce the
     byte budget — entries just recorded are the freshest, so LRU
     eviction under a tiny budget sheds older units first. *)
  let triples rows =
    Array.fold_left (fun acc r -> acc + (Array.length r / 3)) 0 rows
  in
  let words rows =
    Array.fold_left (fun acc r -> acc + Array.length r + 3) 0 rows
  in
  let add e =
    t.bytes <- t.bytes + e.e_bytes;
    t.stored <- t.stored + e.e_paths
  in
  Array.iter
    (function
      | Hit _ -> ()
      | Record rc ->
          if not (Hashtbl.mem t.entries rc.r_ident) then begin
            let pairs = Array.map buf_contents rc.r_pairs in
            let semi = Array.map buf_contents rc.r_semi in
            let e =
              {
                e_pairs = pairs;
                e_semi = semi;
                e_bytes = 8 * (words pairs + words semi + 8);
                e_paths = triples pairs + triples semi;
                e_used = t.clock;
              }
            in
            Hashtbl.replace t.entries rc.r_ident e;
            add e
          end)
    state;
  Hashtbl.iter
    (fun _ s ->
      match s with
      | PRecord (ia, ib, pl, rows) ->
          let key = (ia, ib, pl) in
          if not (Hashtbl.mem t.pentries key) then begin
            let pairs = Array.map buf_contents rows in
            let e =
              {
                e_pairs = pairs;
                e_semi = [||];
                e_bytes = 8 * (words pairs + 8);
                e_paths = triples pairs;
                e_used = t.clock;
              }
            in
            Hashtbl.replace t.pentries key e;
            add e
          end
      | PHit _ | PSkip | PLive -> ())
    pstate_tbl;
  evict_to_budget t
