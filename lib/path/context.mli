(** Path-contexts (paper Definition 4.3): an AST path together with the
    values at its two ends, plus the node ids so prediction tasks can
    map ends back to program elements.

    The representation is interned: values and paths are dense int ids
    into a per-extraction {!Tab.t} — each distinct path of a file
    exists once (hash-consed, hash precomputed), each distinct end
    value is stored once. The string views below resolve through the
    table and render exactly what the old string-carrying record
    rendered. *)

(** Per-extraction intern tables: one per {!Ast.Index.t} per
    extraction pass, owned by a single domain. Ids are assigned in
    first-sight order, so they are deterministic per file and
    independent of any other file or domain. *)
module Tab : sig
  type t

  val create : Ast.Index.t -> t
  val index : t -> Ast.Index.t

  val rebind : t -> Ast.Index.t -> unit
  (** Point the table at a new index, keeping every interned value and
      hash-consed path (and their ids). Requires both the current and
      the new index to be built over the same shared label table
      ([Ast.Index.build ~labels]) — stored path keys are label ids and
      are only meaningful under one id space; raises
      [Invalid_argument] otherwise. This is what lets the incremental
      extraction session reuse one table across edits, so replayed
      cache entries carry ids valid for the current build. *)

  val num_paths : t -> int
  (** Ids handed out so far are [0 .. num_paths - 1]; path ids are
      dense, so per-path memo tables can be plain arrays. *)

  val num_values : t -> int
  val value_string : t -> int -> string
  val path : t -> int -> Path.t

  val vid : t -> int -> int
  (** Interned value id of a node (its value, or its label for a
      nonterminal), interning on first sight — the id {!make_with_lca}
      would put in a context with that node as an end. The incremental
      cache replay uses this to stamp the live end of a replayed
      context. *)
end

type t = {
  start_node : int;  (** Node id in the originating {!Ast.Index.t}. *)
  end_node : int;
  start_vid : int;  (** Interned value id, resolve with {!start_value}. *)
  end_vid : int;
  path_id : int;  (** Hash-consed path id, resolve with {!path}. *)
  tab : Tab.t;
}

val make : idx:Ast.Index.t -> start_node:int -> end_node:int -> t
(** Builds the path-context between two nodes of [idx] by walking both
    parent chains to their LCA, in a fresh single-use {!Tab.t}. The
    value of a nonterminal end is its label (used by the full-type
    task, where one end is an expression nonterminal). Extraction
    callers use {!make_with_lca} with a shared table instead. *)

val make_with_lca :
  tab:Tab.t -> lca:int -> start_node:int -> end_node:int -> t
(** Like {!make} with the LCA already known (the extraction iterator
    computes it anyway to check limits) and an explicit shared table.
    On a path-cache hit nothing is allocated but the context itself. *)

val start_value : t -> string
(** The interned value string — the stored string itself, not a copy. *)

val end_value : t -> string
val path : t -> Path.t

val reverse : t -> t
(** Swaps ends and reverses the path (consed into the same table). *)

val pp : Format.formatter -> t -> unit
(** Paper notation: [⟨start, path, end⟩]. *)

val to_string : t -> string

val equal : t -> t -> bool
(** Structural — safe across contexts from different tables. *)
