(* Interned path-contexts. Values and paths are dense int ids into a
   per-extraction [Tab.t]; the string views ([start_value], [path],
   [pp]) resolve through the table and render exactly what the old
   string-carrying record rendered (golden-tested against the seed).

   A [Tab.t] belongs to one [Ast.Index.t] and one domain: extraction
   over a file creates one, every context of that file shares it, and
   ids are assigned in first-sight order — deterministic for a given
   file, independent of what any other domain is doing. *)

module Tab = struct
  type t = {
    mutable idx : Ast.Index.t;
    values : Intern.Strtab.t;
    mutable vids : int array;  (* node -> value id; -1 = not yet interned *)
    paths : Path.t Intern.Hashcons.t;
    mutable keys : int array array;
        (* per path id: [|n_up; label ids in path order|] — the
           allocation-free equality/hash key of the consed path *)
  }

  let create idx =
    {
      idx;
      values = Intern.Strtab.create ~hint:64 ();
      vids = Array.make (max 1 (Ast.Index.size idx)) (-1);
      paths = Intern.Hashcons.create ~hint:64 ();
      keys = Array.make 64 [||];
    }

  (* Point the table at a new index, keeping every interned value and
     consed path. Sound only when the new index interned its labels
     through the same shared [Intern.Strtab] as every index this table
     was ever bound to: the stored path keys are label ids, and probing
     compares them against the current index's [label_id_array]. The
     incremental extraction session owns exactly that invariant. *)
  let rebind t idx =
    (match (Ast.Index.shared_labels t.idx, Ast.Index.shared_labels idx) with
    | Some a, Some b when a == b -> ()
    | _ ->
        invalid_arg
          "Context.Tab.rebind: old and new index must share one label table");
    t.idx <- idx;
    let n = max 1 (Ast.Index.size idx) in
    if Array.length t.vids < n then t.vids <- Array.make n (-1)
    else Array.fill t.vids 0 (Array.length t.vids) (-1)

  let index t = t.idx
  let num_paths t = Intern.Hashcons.size t.paths
  let num_values t = Intern.Strtab.size t.values
  let value_string t vid = Intern.Strtab.to_string t.values vid
  let path t pid = Intern.Hashcons.get t.paths pid

  let node_value idx n =
    match Ast.Index.value idx n with
    | Some v -> v
    | None -> Ast.Index.label idx n

  let vid t n =
    let v = t.vids.(n) in
    if v >= 0 then v
    else begin
      let v = Intern.Strtab.intern t.values (node_value t.idx n) in
      t.vids.(n) <- v;
      v
    end

  let mask62 = (1 lsl 62) - 1
  let mix h v = ((h * 0x9E3779B1) + v + 1) land mask62

  (* Reference hash of a key array; [cons] computes the same value
     incrementally while walking the parent chains (same mixing, same
     order: start-side bottom-up, top, end-side bottom-up, n_up, n_down),
     so chain-probed and key-probed paths land in the same slot. *)
  let hash_of_key key =
    let k = Array.length key - 2 in
    let da = key.(0) in
    let h = ref 17 in
    for i = 1 to da do
      h := mix !h key.(i)
    done;
    h := mix !h key.(da + 1);
    for i = k + 1 downto da + 2 do
      h := mix !h key.(i)
    done;
    mix (mix !h da) (k - da)

  let store_key t id key =
    if id >= Array.length t.keys then begin
      let cap = max (2 * Array.length t.keys) (id + 1) in
      let keys = Array.make cap [||] in
      Array.blit t.keys 0 keys 0 (Array.length t.keys);
      t.keys <- keys
    end;
    t.keys.(id) <- key

  (* Hash-cons the up-then-down path between two nodes. On a hit
     nothing is allocated: the hash and the equality check walk the
     parent chains against the stored int key. *)
  let cons t ~lca ~start_node ~end_node ~da ~db =
    let label_ids = Ast.Index.label_id_array t.idx in
    let parent = Ast.Index.parent_array t.idx in
    let k = da + db in
    let h = ref 17 in
    let n = ref start_node in
    for _ = 1 to da do
      h := mix !h (Array.unsafe_get label_ids !n);
      n := Array.unsafe_get parent !n
    done;
    h := mix !h (Array.unsafe_get label_ids lca);
    let n = ref end_node in
    for _ = 1 to db do
      h := mix !h (Array.unsafe_get label_ids !n);
      n := Array.unsafe_get parent !n
    done;
    let h = mix (mix !h da) db in
    let equal id =
      let key = t.keys.(id) in
      Array.length key = k + 2
      && key.(0) = da
      && key.(da + 1) = label_ids.(lca)
      && begin
           let ok = ref true in
           let n = ref start_node in
           for i = 1 to da do
             if key.(i) <> label_ids.(!n) then ok := false;
             n := parent.(!n)
           done;
           let n = ref end_node in
           for i = k + 1 downto da + 2 do
             if key.(i) <> label_ids.(!n) then ok := false;
             n := parent.(!n)
           done;
           !ok
         end
    in
    let built_key = ref [||] in
    let build () =
      let labels = Ast.Index.label_array t.idx in
      let nodes = Array.make (k + 1) (Array.unsafe_get labels lca) in
      let key = Array.make (k + 2) da in
      key.(da + 1) <- label_ids.(lca);
      let n = ref start_node in
      for i = 0 to da - 1 do
        Array.unsafe_set nodes i (Array.unsafe_get labels !n);
        key.(i + 1) <- Array.unsafe_get label_ids !n;
        n := Array.unsafe_get parent !n
      done;
      let n = ref end_node in
      for i = 0 to db - 1 do
        Array.unsafe_set nodes (k - i) (Array.unsafe_get labels !n);
        key.(k + 1 - i) <- Array.unsafe_get label_ids !n;
        n := Array.unsafe_get parent !n
      done;
      built_key := key;
      Path.of_updown ~nodes ~n_up:da
    in
    let before = Intern.Hashcons.size t.paths in
    let id = Intern.Hashcons.probe t.paths ~hash:h ~equal ~build in
    if id = before then store_key t id !built_key;
    id

  (* Id of the reverse of an already-consed path. *)
  let cons_reverse t pid =
    let key = t.keys.(pid) in
    let k = Array.length key - 2 in
    let da = key.(0) in
    let rk = Array.make (k + 2) (k - da) in
    for i = 1 to k + 1 do
      rk.(i) <- key.(k + 2 - i)
    done;
    let equal id = t.keys.(id) = rk in
    let before = Intern.Hashcons.size t.paths in
    let id =
      Intern.Hashcons.probe t.paths ~hash:(hash_of_key rk) ~equal
        ~build:(fun () -> Path.reverse (Intern.Hashcons.get t.paths pid))
    in
    if id = before then store_key t id rk;
    id
end

type t = {
  start_node : int;
  end_node : int;
  start_vid : int;
  end_vid : int;
  path_id : int;
  tab : Tab.t;
}

let start_value t = Tab.value_string t.tab t.start_vid
let end_value t = Tab.value_string t.tab t.end_vid
let path t = Tab.path t.tab t.path_id

let make_with_lca ~tab ~lca ~start_node ~end_node =
  let depth = Ast.Index.depth_array (Tab.index tab) in
  let dl = Array.unsafe_get depth lca in
  let da = Array.unsafe_get depth start_node - dl
  and db = Array.unsafe_get depth end_node - dl in
  {
    start_node;
    end_node;
    start_vid = Tab.vid tab start_node;
    end_vid = Tab.vid tab end_node;
    path_id = Tab.cons tab ~lca ~start_node ~end_node ~da ~db;
    tab;
  }

let make ~idx ~start_node ~end_node =
  make_with_lca ~tab:(Tab.create idx)
    ~lca:(Ast.Index.lca idx start_node end_node)
    ~start_node ~end_node

let reverse t =
  {
    start_node = t.end_node;
    end_node = t.start_node;
    start_vid = t.end_vid;
    end_vid = t.start_vid;
    path_id = Tab.cons_reverse t.tab t.path_id;
    tab = t.tab;
  }

let pp ppf t =
  Format.fprintf ppf "\xe2\x9f\xa8%s, %a, %s\xe2\x9f\xa9" (start_value t)
    Path.pp (path t) (end_value t)

let to_string t = Format.asprintf "%a" pp t

(* Structural, across tables: contexts from different extractions (and
   so different id spaces) compare by what they denote. *)
let equal a b =
  a.start_node = b.start_node && a.end_node = b.end_node
  && String.equal (start_value a) (start_value b)
  && String.equal (end_value a) (end_value b)
  && Path.equal (path a) (path b)
