(** Path abstraction functions α (paper Definition 4.4 and Section 5.6).

    An abstraction maps a concrete path to a coarser key; coarser keys
    merge distinct paths, shrinking the model and speeding up training
    at some cost in accuracy (Fig. 12). *)

type t =
  | Full  (** α_id: the complete node-by-node path with arrows. *)
  | No_arrows  (** Node sequence without the ↑/↓ movement symbols. *)
  | Forget_order  (** Bag of node labels: sorted, without arrows. *)
  | First_top_last
      (** Only the first, hierarchically-highest, and last nodes —
          the paper's accuracy/training-time "sweet spot". *)
  | First_last  (** Only the two end nodes. *)
  | Top  (** Only the top node. *)
  | No_paths
      (** Every path maps to the same key: the bag-of-near-identifiers
          baseline, hiding all syntactic relations. *)

val apply : t -> Path.t -> string
(** The abstracted key; distinct keys never merge under a finer
    abstraction than under a coarser one (tested by property tests). *)

type memo
(** Caches {!apply} per hash-consed path id. Valid for contexts from a
    single {!Context.Tab.t} only — make one memo per extraction. *)

val memo : t -> memo

val apply_memo : memo -> Context.t -> string
(** [apply (ab of m) (Context.path c)], computed once per distinct
    path of the context's table. *)

val name : t -> string
val of_name : string -> t option
val all : t list
(** In decreasing expressiveness: [Full; No_arrows; Forget_order;
    First_top_last; First_last; Top; No_paths]. *)

val pp : Format.formatter -> t -> unit
