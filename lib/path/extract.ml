(* The one pairwise enumeration loop. Emits (start, end, lca) for every
   leaf pair within the config limits, ordered by end leaf then start
   leaf (the historical [leaf_pairs] order).

   Windowed pruning: for a fixed end leaf [b] and start leaves scanned
   leftward, the depth of [lca a b] is non-increasing (the subtree of a
   shallower LCA spans a superset of the leaf range), so the minimum
   possible path length [depth b - depth lca + 1] is non-decreasing.
   Feasibility is therefore monotone in the start index and the left
   edge of each window is found by binary search; pairs left of it are
   never visited. *)
let iter_within ?downsample idx (cfg : Config.t) f =
  let leaves =
    match downsample with
    | None -> Ast.Index.leaves idx
    | Some (rng, p) ->
        if p >= 1. then Ast.Index.leaves idx
        else
          Array.of_seq
            (Seq.filter
               (fun _ -> Downsample.decide rng ~p)
               (Array.to_seq (Ast.Index.leaves idx)))
  in
  let n = Array.length leaves in
  let depth = Ast.Index.depth_array idx in
  let max_length = cfg.max_length and max_width = cfg.max_width in
  for j = 1 to n - 1 do
    let b = Array.unsafe_get leaves j in
    let db = Array.unsafe_get depth b in
    let feasible i =
      db
      - Array.unsafe_get depth (Ast.Index.lca idx (Array.unsafe_get leaves i) b)
      + 1
      <= max_length
    in
    if feasible (j - 1) then begin
      let lo = ref 0 and hi = ref (j - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if feasible mid then hi := mid else lo := mid + 1
      done;
      for i = !lo to j - 1 do
        let a = Array.unsafe_get leaves i in
        let l = Ast.Index.lca idx a b in
        let len =
          Array.unsafe_get depth a + db - (2 * Array.unsafe_get depth l)
        in
        if
          len >= 1 && len <= max_length
          && Ast.Index.width_between idx ~lca:l a b <= max_width
        then f a b l
      done
    end
  done

let tab_for ?tab idx =
  match tab with Some t -> t | None -> Context.Tab.create idx

let iter ?downsample ?tab idx cfg f =
  let tab = tab_for ?tab idx in
  iter_within ?downsample idx cfg (fun a b l ->
      f (Context.make_with_lca ~tab ~lca:l ~start_node:a ~end_node:b))

let iter_semi_paths ?downsample ?tab idx (cfg : Config.t) f =
  let tab = tab_for ?tab idx in
  (* The downsampling decision runs BEFORE the context is built: a
     dropped semi-path costs one rng draw and nothing else — no LCA
     walk, no value interning, no path consing. One draw per candidate
     in enumeration order, so the kept set for a given seed is
     identical to the old construct-then-decide implementation. *)
  let keep =
    match downsample with
    | None -> fun () -> true
    | Some (rng, p) -> fun () -> Downsample.decide rng ~p
  in
  Array.iter
    (fun leaf ->
      let rec go node steps =
        if steps <= cfg.max_length && node <> -1 then begin
          if keep () then
            f
              (Context.make_with_lca ~tab ~lca:node ~start_node:leaf
                 ~end_node:node);
          go (Ast.Index.parent idx node) (steps + 1)
        end
      in
      go (Ast.Index.parent idx leaf) 1)
    (Ast.Index.leaves idx)

let iter_all ?downsample ?tab idx (cfg : Config.t) f =
  let tab = tab_for ?tab idx in
  iter ?downsample ~tab idx cfg f;
  if cfg.include_semi_paths then iter_semi_paths ?downsample ~tab idx cfg f

let iter_all_cached ~cache idx cfg f = Cache.extract cache idx cfg f

let collect run =
  let acc = ref [] in
  run (fun c -> acc := c :: !acc);
  List.rev !acc

let leaf_pairs idx cfg = collect (iter idx cfg)
let semi_paths idx cfg = collect (iter_semi_paths idx cfg)
let all idx cfg = collect (iter_all idx cfg)

let leaf_to_node ?tab idx (cfg : Config.t) ~target =
  let tab = tab_for ?tab idx in
  let dt = Ast.Index.depth idx target in
  let acc = ref [] in
  Array.iter
    (fun leaf ->
      if leaf <> target then begin
        let l = Ast.Index.lca idx leaf target in
        let len = Ast.Index.depth idx leaf + dt - (2 * Ast.Index.depth idx l) in
        if
          len >= 1 && len <= cfg.max_length
          && Ast.Index.width_between idx ~lca:l leaf target <= cfg.max_width
        then
          acc :=
            Context.make_with_lca ~tab ~lca:l ~start_node:leaf ~end_node:target
            :: !acc
      end)
    (Ast.Index.leaves idx);
  List.rev !acc

let star contexts ~anchor =
  List.filter_map
    (fun (c : Context.t) ->
      if c.Context.start_node = anchor then Some c
      else if c.Context.end_node = anchor then Some (Context.reverse c)
      else None)
    contexts

let count_within idx (cfg : Config.t) =
  let count = ref 0 in
  iter_within idx cfg (fun _ _ _ -> incr count);
  !count
