type t =
  | Full
  | No_arrows
  | Forget_order
  | First_top_last
  | First_last
  | Top
  | No_paths

let apply t path =
  match t with
  | Full -> Path.to_string path
  | No_arrows -> String.concat "," (Array.to_list (Path.nodes path))
  | Forget_order ->
      let ns = Array.to_list (Path.nodes path) in
      String.concat "," (List.sort String.compare ns)
  | First_top_last ->
      String.concat ","
        [ Path.first path; Path.top path; Path.last path ]
  | First_last -> String.concat "," [ Path.first path; Path.last path ]
  | Top -> Path.top path
  | No_paths -> "*"

(* Per-extraction memo: path ids are dense per [Context.Tab.t], so the
   cache is a plain array. One memo per (table, abstraction) pair — ids
   from a different table would alias. *)
type memo = { ab : t; mutable cache : string array }

let unset = Bytes.unsafe_to_string (Bytes.create 1)
let memo ab = { ab; cache = Array.make 64 unset }

let apply_memo m (c : Context.t) =
  let pid = c.Context.path_id in
  if pid >= Array.length m.cache then begin
    let cap = max (2 * Array.length m.cache) (pid + 1) in
    let cache = Array.make cap unset in
    Array.blit m.cache 0 cache 0 (Array.length m.cache);
    m.cache <- cache
  end;
  let s = Array.unsafe_get m.cache pid in
  if s != unset then s
  else begin
    let s = apply m.ab (Context.path c) in
    m.cache.(pid) <- s;
    s
  end

let name = function
  | Full -> "full"
  | No_arrows -> "no-arrows"
  | Forget_order -> "forget-order"
  | First_top_last -> "first-top-last"
  | First_last -> "first-last"
  | Top -> "top"
  | No_paths -> "no-paths"

let all =
  [ Full; No_arrows; Forget_order; First_top_last; First_last; Top; No_paths ]

let of_name s = List.find_opt (fun t -> String.equal (name t) s) all
let pp ppf t = Format.pp_print_string ppf (name t)
