(** Path extraction over an indexed AST (paper Sections 4.1–4.2).

    All extractors respect the {!Config.t} limits: a pairwise path is
    kept iff its length (edge count) is at most [max_length] and its
    width at the top node (Fig. 5) is at most [max_width].

    The pairwise enumeration exists in exactly one place — the iterator
    core behind {!iter} — and every other extractor is built on top of
    it. Per pair it costs O(1) for the limit checks (Euler-tour RMQ LCA
    in {!Ast.Index}) plus O(path length) only for emitted contexts, and
    leaf-order windows that cannot satisfy [max_length] are skipped
    wholesale (binary-searched window edge). The list-returning
    functions below materialize the iterator's output; callers on the
    hot path should consume the iterators directly. *)

val iter :
  ?downsample:Random.State.t * float ->
  ?tab:Context.Tab.t ->
  Ast.Index.t ->
  Config.t ->
  (Context.t -> unit) ->
  unit
(** All leafwise path-contexts, streamed without building a list; each
    pair is reported once with the start leaf preceding the end leaf in
    source order, ordered by end leaf then start leaf (the same order
    {!leaf_pairs} returns). [downsample (rng, p)] keeps each leaf
    occurrence with probability [p] {e before} pair enumeration (paper
    Section 5.5), so dropped occurrences never pay extraction cost.
    [tab] is the intern table the emitted contexts share (a fresh one
    per call when omitted); pass one explicitly to share path/value
    ids across several extraction calls over the same index. *)

val iter_semi_paths :
  ?downsample:Random.State.t * float ->
  ?tab:Context.Tab.t ->
  Ast.Index.t ->
  Config.t ->
  (Context.t -> unit) ->
  unit
(** Semi-paths, streamed: from each terminal up to each of its strict
    ancestors, up to [max_length] edges. [downsample] filters each
    candidate with probability [p] {e before} the context is built
    (occurrence downsampling does not apply: a semi-path has only one
    leaf end), so dropped semi-paths cost one rng draw and no
    construction or interning. The rng is drawn once per candidate in
    enumeration order, so the kept set for a given seed is exactly the
    one the historical construct-then-decide implementation kept. *)

val iter_all :
  ?downsample:Random.State.t * float ->
  ?tab:Context.Tab.t ->
  Ast.Index.t ->
  Config.t ->
  (Context.t -> unit) ->
  unit
(** {!iter}, then {!iter_semi_paths} when the config enables them —
    both over the same [tab]. *)

val iter_all_cached :
  cache:Cache.t -> Ast.Index.t -> Config.t -> (Context.t -> unit) -> unit
(** Cached mode of {!iter_all}: the same stream, byte-identical and in
    the same order, but replayed from [cache] for every subtree the
    cache has seen before (see {!Cache}). No downsampling — the cached
    stream is the full one. [idx] must be built via {!Cache.index}. *)

val leaf_pairs : Ast.Index.t -> Config.t -> Context.t list
(** {!iter}'s output as a list. *)

val semi_paths : Ast.Index.t -> Config.t -> Context.t list
(** {!iter_semi_paths}'s output as a list. Semi-paths are less
    expressive than leafwise paths but generalize across programs
    (Section 5). *)

val leaf_to_node :
  ?tab:Context.Tab.t -> Ast.Index.t -> Config.t -> target:int -> Context.t list
(** Paths from every terminal to the given node (used by the full-type
    task, where [target] is an expression nonterminal). The target is
    always the [end] of the context. Terminals inside the target's own
    subtree connect to it by pure-up semi-paths; others by regular
    up-then-down paths. *)

val all : Ast.Index.t -> Config.t -> Context.t list
(** {!leaf_pairs}, plus {!semi_paths} when the config enables them. *)

val star : Context.t list -> anchor:int -> Context.t list
(** The n-wise view of the family (Section 4.1): all extracted contexts
    one of whose ends is the node [anchor], re-oriented so [anchor] is
    the start. An n-wise path with anchor [a] and ends [b1..bn] is
    represented by its n pairwise projections. *)

val count_within : Ast.Index.t -> Config.t -> int
(** Number of leafwise contexts that would be extracted; cheaper than
    building them (used by tests and by corpus statistics). *)
