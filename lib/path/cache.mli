(** Incremental extraction: a session-persistent path-context cache
    for editor-style edit streams.

    A cache owns the intern tables of one editing session: a shared
    label table every index of the session is built over, the symbol
    and key tables of the {!Ast.Ident} structural-identity pass, and
    one {!Context.Tab} rebound to each new index (so values and paths
    keep their ids across builds). Extraction is memoized per {e cache
    unit} — a topmost subtree with at most [unit_size] nodes — keyed
    by the unit root's structural identity id: re-extracting an edited
    file replays the memoized path-context sets of every unit the edit
    did not touch and only runs live for changed units and for pairs
    crossing unit boundaries.

    Contract: for a given config, {!extract} emits a stream
    byte-identical — same contexts, same order, same interned ids,
    same rendered strings — to a from-scratch
    [Extract.iter_all ~tab idx cfg] with no downsampling. Entries are
    invalidated when the config limits change (fingerprint flush) and
    evicted LRU when [max_bytes] is exceeded. *)

type t

type stats = {
  hits : int;  (** Units replayed from cache, summed over extracts. *)
  misses : int;  (** Units extracted live and recorded. *)
  cached_paths : int;  (** Path-context triples currently stored. *)
  bytes : int;  (** Estimated heap bytes of stored entries. *)
  evictions : int;  (** Entries dropped to respect [max_bytes]. *)
}

val create : ?unit_size:int -> ?max_bytes:int -> unit -> t
(** [unit_size] (default 192) is the max node count of a cache unit —
    smaller units survive more edits but widen the live crossing
    fringe. The effective budget per extract is additionally capped at
    half the tree's node count, so a small buffer never degenerates
    into a single whole-tree unit that every edit invalidates.
    [max_bytes] (default 0 = unbounded) bounds stored entries,
    evicting least-recently-used units past it. Raises
    [Invalid_argument] on [unit_size < 1] or negative [max_bytes]. *)

val labels : t -> Intern.Strtab.t
(** The session's shared label table; every index passed to {!extract}
    must be built over it. *)

val index : t -> Ast.Tree.t -> Ast.Index.t
(** [index t tree] is [Ast.Index.build ~labels:(labels t) tree] — the
    only correct way to build indexes for {!extract}. *)

val extract : t -> Ast.Index.t -> Config.t -> (Context.t -> unit) -> unit
(** Emit the full path-context stream of [idx] (pairs, then semi-paths
    when the config asks for them) in from-scratch order, replaying
    cached units and recording missed ones. Raises [Invalid_argument]
    if [idx] was not built through {!index}/{!labels}. Not
    thread-safe: one cache belongs to one session. *)

val stats : t -> stats
val bytes : t -> int

val replayed : t -> int
(** Total contexts replayed from cache across all extracts. *)
