#!/bin/sh
# CI smoke test: full build, the tier-1 test suite (run twice: once as
# configured, once with a 2-job ambient pool so every job-invariance
# contract is exercised under real worker domains), a bounded fuzz
# pass over the front-ends and model loaders, the fault-injection
# bench (10%-corrupt corpora must train with exact skip tallies), the
# parallel-scaling bench (regenerates BENCH_parallel.json; determinism
# checks always, speedup floor only on >= 4-core hosts), the
# training-kernels bench (old-vs-new CRF/SGNS kernels; quick mode
# checks equivalence only, full runs also enforce the 2x floor and
# refresh BENCH_train.json), the interned-pipeline bench (string
# pipeline vs shared symbol table, v2 text vs v3 binary models: v3
# round-trips byte-identically and both loads predict identically;
# full runs also enforce the encode/load floors and refresh
# BENCH_intern.json), the v3 round-trip/corruption tests (part of
# test_serialize, run under dune runtest), the micro benchmark
# (which also regenerates BENCH_extract.json and checks the iterator
# engine against the naive baseline corpus-wide), the serve tests
# (hostile-request isolation, daemon byte-identity), a live daemon
# smoke (train a model, start `pigeon serve` on a Unix socket, mixed
# well-formed/hostile burst through `pigeon client`, clean shutdown),
# and the quick serve throughput bench.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
PIGEON_JOBS=2 dune exec test/test_parallel.exe
PIGEON_JOBS=2 dune exec test/test_core.exe
PIGEON_FUZZ_COUNT=400 dune exec test/test_fuzz.exe
dune exec bench/main.exe -- --quick fault
dune exec bench/main.exe -- --quick parallel
dune exec bench/main.exe -- --quick train
dune exec test/test_serialize.exe
dune exec test/test_intern.exe
dune exec bench/main.exe -- --quick intern
dune exec bench/main.exe -- --quick micro

# ---- serve: unit/integration tests, live daemon smoke, quick bench ----
dune exec test/test_serve.exe

SMOKE_DIR=$(mktemp -d /tmp/pigeon-ci-serve.XXXXXX)
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

dune exec bin/pigeon_cli.exe -- train --files 60 -j 1 "$SMOKE_DIR/model.crf"
dune exec bin/pigeon_cli.exe -- gen --files 3 "$SMOKE_DIR/corpus"

SOCK="$SMOKE_DIR/pigeon.sock"
dune exec bin/pigeon_cli.exe -- serve --model "$SMOKE_DIR/model.crf" \
  --socket "$SOCK" -j 1 --max-input-bytes 65536 2>"$SMOKE_DIR/serve.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "serve smoke: daemon never bound $SOCK" >&2
    cat "$SMOKE_DIR/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

client() { dune exec bin/pigeon_cli.exe -- client --socket "$SOCK" "$@"; }

client --op ping
for f in "$SMOKE_DIR"/corpus/*.js; do
  client "$f"
done
# hostile: an input over the daemon's --max-input-bytes budget must
# come back as a structured error (client exit 3), not a dead daemon
head -c 100000 /dev/zero | tr '\0' 'x' >"$SMOKE_DIR/huge.js"
if client "$SMOKE_DIR/huge.js"; then
  echo "serve smoke: oversized request unexpectedly succeeded" >&2
  exit 1
elif [ $? -ne 3 ]; then
  echo "serve smoke: expected a structured error (exit 3)" >&2
  exit 1
fi
client "$SMOKE_DIR/corpus/sample_0000.js"
client --op stats
client --op shutdown
wait "$SERVE_PID"
SERVE_PID=""
if [ -e "$SOCK" ]; then
  echo "serve smoke: socket not unlinked on shutdown" >&2
  exit 1
fi
echo "serve smoke: ok"

dune exec bench/main.exe -- --quick serve
