#!/bin/sh
# CI smoke test: full build, the tier-1 test suite (run twice: once as
# configured, once with a 2-job ambient pool so every job-invariance
# contract is exercised under real worker domains), a bounded fuzz
# pass over the front-ends and model loaders, the fault-injection
# bench (10%-corrupt corpora must train with exact skip tallies), the
# parallel-scaling bench (regenerates BENCH_parallel.json; determinism
# checks always, speedup floor only on >= 4-core hosts), the
# training-kernels bench (old-vs-new CRF/SGNS kernels; quick mode
# checks equivalence only, full runs also enforce the 2x floor and
# refresh BENCH_train.json), the interned-pipeline bench (string
# pipeline vs shared symbol table, v2 text vs v3 binary models: v3
# round-trips byte-identically and both loads predict identically;
# full runs also enforce the encode/load floors and refresh
# BENCH_intern.json), the v3 round-trip/corruption tests (part of
# test_serialize, run under dune runtest), and the micro benchmark
# (which also regenerates BENCH_extract.json and checks the iterator
# engine against the naive baseline corpus-wide).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
PIGEON_JOBS=2 dune exec test/test_parallel.exe
PIGEON_JOBS=2 dune exec test/test_core.exe
PIGEON_FUZZ_COUNT=400 dune exec test/test_fuzz.exe
dune exec bench/main.exe -- --quick fault
dune exec bench/main.exe -- --quick parallel
dune exec bench/main.exe -- --quick train
dune exec test/test_serialize.exe
dune exec test/test_intern.exe
dune exec bench/main.exe -- --quick intern
dune exec bench/main.exe -- --quick micro
