#!/bin/sh
# CI smoke test: full build, the tier-1 test suite, a bounded fuzz
# pass over the front-ends and model loaders, the fault-injection
# bench (10%-corrupt corpora must train with exact skip tallies), and
# the micro benchmark (which also regenerates BENCH_extract.json and
# checks the iterator engine against the naive baseline corpus-wide).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
PIGEON_FUZZ_COUNT=400 dune exec test/test_fuzz.exe
dune exec bench/main.exe -- --quick fault
dune exec bench/main.exe -- --quick micro
