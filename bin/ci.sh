#!/bin/sh
# CI smoke test: full build, the tier-1 test suite (run twice: once as
# configured, once with a 2-job ambient pool so every job-invariance
# contract is exercised under real worker domains), a bounded fuzz
# pass over the front-ends and model loaders, the fault-injection
# bench (10%-corrupt corpora must train with exact skip tallies), the
# parallel-scaling bench (regenerates BENCH_parallel.json; determinism
# checks always, speedup floor only on >= 4-core hosts), the
# training-kernels bench (old-vs-new CRF/SGNS kernels; quick mode
# checks equivalence only, full runs also enforce the 2x floor and
# refresh BENCH_train.json), the interned-pipeline bench (string
# pipeline vs shared symbol table, v2 text vs v3 binary models: v3
# round-trips byte-identically and both loads predict identically;
# full runs also enforce the encode/load floors and refresh
# BENCH_intern.json), the v3 round-trip/corruption tests (part of
# test_serialize, run under dune runtest), the micro benchmark
# (which also regenerates BENCH_extract.json and checks the iterator
# engine against the naive baseline corpus-wide), the serve tests
# (hostile-request isolation, daemon byte-identity), the netio
# edge-case tests, the bounded chaos harness (fault injection: torn
# replies, engine errors, accept drops, overload, reload under load),
# a live daemon smoke (train a model, start `pigeon serve` on a Unix
# socket, mixed well-formed/hostile burst through `pigeon client`,
# clean shutdown), lifecycle smokes (wire + SIGHUP hot reload,
# SIGTERM drain with socket unlink, client exit-code contract, fail-
# fast PIGEON_FAULTS parsing), registry smokes (two models served side
# by side, predict by name, LRU eviction under a tiny --max-mapped-bytes
# budget with transparent revival, reload-by-name / unload / set-default
# over the wire), a session smoke (an editor session — open, two
# full-buffer edits, close — through the real binaries; every session
# reply's prediction fields must be byte-identical to a one-shot
# predict of the same buffer, then SIGTERM), the quick serve
# throughput bench including its 2x-overload shed phase, and the
# quick incremental bench (edit-trace replay: cached extraction
# byte-identical to from-scratch at every step; the 5x speedup floor
# is enforced on full runs only), an out-of-core smoke (train to disk
# shards with a tiny heap budget, SIGKILL the checkpointed run
# mid-training, resume it, and require the resumed model to be
# byte-identical to an uninterrupted run), and the quick oocore bench
# (streamed shards, peak-live-heap sampling, in-process kill/resume
# byte-identity for both trainers; heap-cap and identity floors are
# enforced on full runs only).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
PIGEON_JOBS=2 dune exec test/test_parallel.exe
PIGEON_JOBS=2 dune exec test/test_core.exe
PIGEON_FUZZ_COUNT=400 dune exec test/test_fuzz.exe
dune exec bench/main.exe -- --quick fault
dune exec bench/main.exe -- --quick parallel
dune exec bench/main.exe -- --quick train
dune exec test/test_serialize.exe
dune exec test/test_intern.exe
dune exec bench/main.exe -- --quick intern
dune exec bench/main.exe -- --quick micro

# ---- serve: unit/integration tests, netio edge cases, chaos, smokes ----
dune exec test/test_serve.exe
dune exec test/test_netio.exe
PIGEON_CHAOS_COUNT=60 dune exec test/test_chaos.exe

SMOKE_DIR=$(mktemp -d /tmp/pigeon-ci-serve.XXXXXX)
SERVE_PID=""
TRAIN_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  if [ -n "$TRAIN_PID" ] && kill -0 "$TRAIN_PID" 2>/dev/null; then
    kill -KILL "$TRAIN_PID" 2>/dev/null || true
    wait "$TRAIN_PID" 2>/dev/null || true
  fi
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

dune exec bin/pigeon_cli.exe -- train --files 60 -j 1 "$SMOKE_DIR/model.crf"
dune exec bin/pigeon_cli.exe -- gen --files 3 "$SMOKE_DIR/corpus"

SOCK="$SMOKE_DIR/pigeon.sock"
dune exec bin/pigeon_cli.exe -- serve --model "$SMOKE_DIR/model.crf" \
  --socket "$SOCK" -j 1 --max-input-bytes 65536 2>"$SMOKE_DIR/serve.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "serve smoke: daemon never bound $SOCK" >&2
    cat "$SMOKE_DIR/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

client() { dune exec bin/pigeon_cli.exe -- client --socket "$SOCK" "$@"; }

client --op ping
for f in "$SMOKE_DIR"/corpus/*.js; do
  client "$f"
done
# hostile: an input over the daemon's --max-input-bytes budget must
# come back as a structured error (client exit 3), not a dead daemon
head -c 100000 /dev/zero | tr '\0' 'x' >"$SMOKE_DIR/huge.js"
if client "$SMOKE_DIR/huge.js"; then
  echo "serve smoke: oversized request unexpectedly succeeded" >&2
  exit 1
elif [ $? -ne 3 ]; then
  echo "serve smoke: expected a structured error (exit 3)" >&2
  exit 1
fi
client "$SMOKE_DIR/corpus/sample_0000.js"
client --op stats
client --op shutdown
wait "$SERVE_PID"
SERVE_PID=""
if [ -e "$SOCK" ]; then
  echo "serve smoke: socket not unlinked on shutdown" >&2
  exit 1
fi
echo "serve smoke: ok"

# ---- lifecycle smokes: SIGHUP hot reload, SIGTERM drain, exit codes ----
# The binary is invoked directly (dune build above produced it) so the
# daemon PID is the daemon, not a dune wrapper — signals land for real.
PIGEON_BIN=_build/default/bin/pigeon_cli.exe

# a second model to hot-swap in, and a live path the daemon re-reads on SIGHUP
"$PIGEON_BIN" train --files 40 -j 1 "$SMOKE_DIR/model2.crf"
cp "$SMOKE_DIR/model.crf" "$SMOKE_DIR/model_live.crf"

SOCK2="$SMOKE_DIR/pigeon2.sock"
"$PIGEON_BIN" serve --model "$SMOKE_DIR/model_live.crf" --socket "$SOCK2" \
  -j 1 2>"$SMOKE_DIR/serve2.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK2" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "lifecycle smoke: daemon never bound $SOCK2" >&2
    cat "$SMOKE_DIR/serve2.log" >&2
    exit 1
  fi
  sleep 0.1
done

"$PIGEON_BIN" client --socket "$SOCK2" --op ping

# hot reload, both ways: the wire op with an explicit path, then
# SIGHUP re-reading the (swapped) live path
"$PIGEON_BIN" client --socket "$SOCK2" --op reload \
  --reload-model "$SMOKE_DIR/model2.crf"
cp "$SMOKE_DIR/model2.crf" "$SMOKE_DIR/model_live.crf"
kill -HUP "$SERVE_PID"
i=0
while ! grep -q "model reloaded (SIGHUP)" "$SMOKE_DIR/serve2.log"; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "lifecycle smoke: SIGHUP reload never logged" >&2
    cat "$SMOKE_DIR/serve2.log" >&2
    exit 1
  fi
  sleep 0.1
done
"$PIGEON_BIN" client --socket "$SOCK2" --op stats | grep -q '"reloads":2' || {
  echo "lifecycle smoke: expected 2 reloads in stats" >&2
  exit 1
}
"$PIGEON_BIN" client --socket "$SOCK2" "$SMOKE_DIR/corpus/sample_0000.js"

# SIGTERM: drain then stop, exit 0, socket unlinked
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "lifecycle smoke: daemon exited non-zero on SIGTERM" >&2
  cat "$SMOKE_DIR/serve2.log" >&2
  exit 1
fi
SERVE_PID=""
if [ -e "$SOCK2" ]; then
  echo "lifecycle smoke: socket not unlinked on SIGTERM" >&2
  exit 1
fi

# unreachable daemon: exit 4 (distinct from 3 = structured error),
# after the bounded retry budget
set +e
"$PIGEON_BIN" client --socket "$SMOKE_DIR/nonexistent.sock" \
  --timeout 1 --retries 2 --op ping 2>/dev/null
rc=$?
set -e
if [ "$rc" -ne 4 ]; then
  echo "lifecycle smoke: expected exit 4 for unreachable daemon, got $rc" >&2
  exit 1
fi

# a typoed PIGEON_FAULTS must refuse to start (exit 2), not silently
# run an un-instrumented daemon
set +e
PIGEON_FAULTS="bogus=1" "$PIGEON_BIN" serve --model "$SMOKE_DIR/model.crf" \
  --socket "$SMOKE_DIR/never.sock" 2>/dev/null
rc=$?
set -e
if [ "$rc" -ne 2 ]; then
  echo "lifecycle smoke: expected exit 2 for bad PIGEON_FAULTS, got $rc" >&2
  exit 1
fi
echo "lifecycle smoke: ok"

# ---- registry smokes: named models, eviction + revival, wire admin ----
SOCK3="$SMOKE_DIR/pigeon3.sock"
"$PIGEON_BIN" serve --model "$SMOKE_DIR/model.crf" \
  --named-model alt="$SMOKE_DIR/model2.crf" --max-mapped-bytes 1 \
  --socket "$SOCK3" -j 1 2>"$SMOKE_DIR/serve3.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK3" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "registry smoke: daemon never bound $SOCK3" >&2
    cat "$SMOKE_DIR/serve3.log" >&2
    exit 1
  fi
  sleep 0.1
done

rclient() { "$PIGEON_BIN" client --socket "$SOCK3" "$@"; }

# both models answer, the default one zero-copy (v4 files map)
rclient "$SMOKE_DIR/corpus/sample_0000.js"
rclient --model-name alt "$SMOKE_DIR/corpus/sample_0000.js"
rclient --op stats | grep -q '"storage":"mapped"' || {
  echo "registry smoke: expected a mapped model in stats" >&2
  exit 1
}

# load a third model by name over the wire; the 1-byte mapped budget
# forces the LRU named model (alt) out of the map
rclient --op reload --model-name third --reload-model "$SMOKE_DIR/model.crf"
rclient --op stats | grep -q '"evictions":1' || {
  echo "registry smoke: expected an eviction under --max-mapped-bytes 1" >&2
  exit 1
}
# an evicted model revives transparently on its next request
rclient --model-name alt "$SMOKE_DIR/corpus/sample_0000.js"

rclient --op reload --set-default alt | grep -q '"default":"alt"' || {
  echo "registry smoke: set-default not acknowledged" >&2
  exit 1
}
rclient --op reload --unload third | grep -q '"unloaded":"third"' || {
  echo "registry smoke: unload not acknowledged" >&2
  exit 1
}
# an unloaded name is a structured error (exit 3), not a dead daemon
set +e
rclient --model-name third "$SMOKE_DIR/corpus/sample_0000.js" >/dev/null
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "registry smoke: expected exit 3 for an unknown model, got $rc" >&2
  exit 1
fi
rclient --op stats | grep -q '^models:' || {
  echo "registry smoke: stats table missing" >&2
  exit 1
}
rclient --op shutdown
wait "$SERVE_PID"
SERVE_PID=""
echo "registry smoke: ok"

# ---- session smoke: an editor session through the real binaries ----
SOCK4="$SMOKE_DIR/pigeon4.sock"
"$PIGEON_BIN" serve --model "$SMOKE_DIR/model.crf" --socket "$SOCK4" \
  -j 1 2>"$SMOKE_DIR/serve4.log" &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK4" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "session smoke: daemon never bound $SOCK4" >&2
    cat "$SMOKE_DIR/serve4.log" >&2
    exit 1
  fi
  sleep 0.1
done

sclient() { "$PIGEON_BIN" client --socket "$SOCK4" "$@"; }

# open one buffer, send two full-buffer edits, close — one connection.
# Incremental extraction must be invisible on the wire: each session
# reply's prediction fields are byte-identical to a one-shot predict of
# the same buffer (only the request id and the trailing session field
# differ).
B0="$SMOKE_DIR/corpus/sample_0000.js"
B1="$SMOKE_DIR/corpus/sample_0001.js"
B2="$SMOKE_DIR/corpus/sample_0002.js"
sclient --op session "$B0" --edit "$B1" --edit "$B2" \
  >"$SMOKE_DIR/session.out"
if [ "$(wc -l <"$SMOKE_DIR/session.out")" -ne 4 ]; then
  echo "session smoke: expected 4 reply lines (open, 2 edits, close)" >&2
  cat "$SMOKE_DIR/session.out" >&2
  exit 1
fi
step=0
for b in "$B0" "$B1" "$B2"; do
  step=$((step + 1))
  session_reply=$(sed -n "${step}p" "$SMOKE_DIR/session.out")
  oneshot=$(sclient "$b")
  sess_body=${session_reply#*,}
  sess_body=${sess_body%,\"session\":\"default\"\}}
  one_body=${oneshot#*,}
  one_body=${one_body%\}}
  if [ "$sess_body" != "$one_body" ]; then
    echo "session smoke: step $step diverged from one-shot predict" >&2
    echo "  session: $session_reply" >&2
    echo "  oneshot: $oneshot" >&2
    exit 1
  fi
done
grep -q '"closed":"default","edits":2}' "$SMOKE_DIR/session.out" || {
  echo "session smoke: close reply missing or wrong edit count" >&2
  cat "$SMOKE_DIR/session.out" >&2
  exit 1
}
sclient --op stats | grep -q '"session_cache":{' || {
  echo "session smoke: stats missing session cache counters" >&2
  exit 1
}
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "session smoke: daemon exited non-zero on SIGTERM" >&2
  cat "$SMOKE_DIR/serve4.log" >&2
  exit 1
fi
SERVE_PID=""
echo "session smoke: ok"

dune exec bench/main.exe -- --quick serve
dune exec bench/main.exe -- --quick incremental

# ---- out-of-core smoke: disk shards, SIGKILL mid-training, resume ----
# Reference run: extraction streamed to disk shards under a 1 MB heap
# budget, trained straight through. Then the same training is run with
# a checkpoint, SIGKILLed as soon as the first checkpoint lands, and
# resumed — the resumed model must be byte-identical to the reference.
# (If the run wins the race and finishes before the kill, the resume
# is a no-op from the final checkpoint and the comparison still holds.)
OOC="$SMOKE_DIR/oocore"
mkdir -p "$OOC"
"$PIGEON_BIN" train --files 120 -j 1 --shard-dir "$OOC/shards_a" \
  --max-heap-mb 1 "$OOC/model_a.crf"
"$PIGEON_BIN" train --files 120 -j 1 --shard-dir "$OOC/shards_b" \
  --checkpoint "$OOC/train.ckpt" --max-heap-mb 1 "$OOC/model_b.crf" \
  2>"$OOC/train.log" &
TRAIN_PID=$!
i=0
while [ ! -f "$OOC/train.ckpt" ] && kill -0 "$TRAIN_PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "oocore smoke: no checkpoint after 60s" >&2
    cat "$OOC/train.log" >&2
    exit 1
  fi
  sleep 0.1
done
kill -KILL "$TRAIN_PID" 2>/dev/null || true
wait "$TRAIN_PID" 2>/dev/null || true
TRAIN_PID=""
if [ ! -f "$OOC/train.ckpt" ]; then
  echo "oocore smoke: killed run left no checkpoint" >&2
  cat "$OOC/train.log" >&2
  exit 1
fi
"$PIGEON_BIN" train --files 120 -j 1 --shard-dir "$OOC/shards_b" \
  --checkpoint "$OOC/train.ckpt" --resume --max-heap-mb 1 "$OOC/model_b.crf"
cmp "$OOC/model_a.crf" "$OOC/model_b.crf" || {
  echo "oocore smoke: resumed model differs from uninterrupted run" >&2
  exit 1
}
echo "oocore smoke: ok (killed run resumed to a byte-identical model)"

dune exec bench/main.exe -- --quick oocore
