#!/bin/sh
# CI smoke test: full build, the tier-1 test suite, and the micro
# benchmark (which also regenerates BENCH_extract.json and checks the
# iterator engine against the naive baseline corpus-wide).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune exec bench/main.exe -- --quick micro
