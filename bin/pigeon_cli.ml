(* The PIGEON command-line tool.

   Subcommands:
     paths    — extract and print path-contexts from a source file
     ast      — print the generic AST (or Graphviz) of a file
     gen      — emit a synthetic corpus into a directory
     rename   — deobfuscate: train on the fly and predict local names
     train    — train a variable-name model and save it to a file
     predict  — predict local names for a file using a saved model
     serve    — long-lived prediction daemon over a Unix/TCP socket
     client   — send one request to a running daemon
     stats    — Table-1 style corpus statistics of a directory

   Examples:
     pigeon paths --lang JavaScript file.js
     pigeon gen --lang Java --files 100 out/
     pigeon train --lang JavaScript --files 300 model.crf
     pigeon predict --lang JavaScript --model model.crf minified.js
     pigeon serve --model model.crf --socket /tmp/pigeon.sock
     pigeon client --socket /tmp/pigeon.sock --lang JavaScript minified.js *)

open Cmdliner

let lang_conv =
  let parse s =
    match Pigeon.Lang.by_name s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown language %S (use %s)" s
                (String.concat ", "
                   (List.map (fun (l : Pigeon.Lang.t) -> l.Pigeon.Lang.name)
                      Pigeon.Lang.all))))
  in
  let print ppf (l : Pigeon.Lang.t) = Format.fprintf ppf "%s" l.Pigeon.Lang.name in
  Arg.conv (parse, print)

let lang_arg =
  Arg.(
    value
    & opt lang_conv Pigeon.Lang.javascript
    & info [ "lang" ] ~docv:"LANG" ~doc:"Language: JavaScript, Java, Python or C#.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Source file.")

(* --jobs wins over PIGEON_JOBS; both default to the machine's core
   count. Ingestion always uses the resulting shared pool (identical
   results for any job count); training additionally opts into
   parallel rounds when more than one job is available. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel stages. Defaults to \
           $(b,PIGEON_JOBS) or the machine's core count.")

let pool_of_jobs jobs =
  (match jobs with Some n -> Parallel.set_default_jobs n | None -> ());
  let p = Parallel.get_pool () in
  if Parallel.jobs p > 1 then Some p else None

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Format.eprintf "error: cannot read %s: %s@." path msg;
    exit 1

(* Run a command body, turning every structured failure (parse error,
   resource limit, I/O error, corrupt model) into a message on stderr
   and a non-zero exit instead of a backtrace. *)
let handle_parse_errors f =
  match Lexkit.protect f with
  | Ok v -> v
  | Error d ->
      Format.eprintf "error:%a@." Lexkit.Diag.pp d;
      exit 1

(* ---------- paths ---------- *)

let length_arg =
  Arg.(value & opt int 7 & info [ "max-length" ] ~doc:"Maximal path length.")

let width_arg =
  Arg.(value & opt int 3 & info [ "max-width" ] ~doc:"Maximal path width.")

let paths_cmd =
  let run lang file max_length max_width =
    handle_parse_errors @@ fun () ->
    let tree = lang.Pigeon.Lang.parse_tree (read_file file) in
    let idx = Ast.Index.build tree in
    let config = Astpath.Config.make ~max_length ~max_width () in
    let contexts = Astpath.Extract.leaf_pairs idx config in
    List.iter (fun c -> Format.printf "%a@." Astpath.Context.pp c) contexts;
    Format.printf "%d path-contexts@." (List.length contexts)
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Extract and print the AST path-contexts of a file.")
    Term.(const run $ lang_arg $ file_arg $ length_arg $ width_arg)

(* ---------- ast ---------- *)

let ast_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run lang file dot_out =
    handle_parse_errors @@ fun () ->
    let tree = lang.Pigeon.Lang.parse_tree (read_file file) in
    if dot_out then print_string (Ast.Dot.tree_to_dot tree)
    else Format.printf "%a@." Ast.Tree.pp tree
  in
  Cmd.v
    (Cmd.info "ast" ~doc:"Print the generic AST of a file.")
    Term.(const run $ lang_arg $ file_arg $ dot)

(* ---------- gen ---------- *)

let gen_cmd =
  let files_arg =
    Arg.(value & opt int 100 & info [ "files" ] ~doc:"Number of files.")
  in
  let seed_arg = Arg.(value & opt int 2018 & info [ "seed" ] ~doc:"Seed.") in
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")
  in
  let run lang n seed dir =
    handle_parse_errors @@ fun () ->
    let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
    let sources =
      Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (name, src) ->
        let oc = open_out (Filename.concat dir name) in
        output_string oc src;
        close_out oc)
      sources;
    Format.printf "wrote %d files to %s@." (List.length sources) dir
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic corpus into a directory.")
    Term.(const run $ lang_arg $ files_arg $ seed_arg $ dir_arg)

(* ---------- rename ---------- *)

let rename_cmd =
  let train_files =
    Arg.(
      value & opt int 300
      & info [ "train-files" ] ~doc:"Synthetic training corpus size.")
  in
  let run lang n jobs file =
    handle_parse_errors @@ fun () ->
    let pool = pool_of_jobs jobs in
    let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed = 42 } in
    let sources =
      Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
    in
    let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
    let graphs =
      Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
        sources
    in
    Format.eprintf "training on %d graphs...@." (List.length graphs);
    let model = Crf.Train.train ?pool graphs in
    let src = read_file file in
    let tree = lang.Pigeon.Lang.parse_tree src in
    let g =
      Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
        ~policy:Pigeon.Graphs.Locals tree
    in
    let pred = Crf.Train.predict model g in
    let gold = Crf.Graph.gold_assignment g in
    Format.printf "predicted names:@.";
    List.iter
      (fun node -> Format.printf "  %-16s -> %s@." gold.(node) pred.(node))
      (Crf.Graph.unknown_ids g)
  in
  Cmd.v
    (Cmd.info "rename"
       ~doc:
         "Predict names for the local variables of a file (train on a fresh \
          synthetic corpus).")
    Term.(const run $ lang_arg $ train_files $ jobs_arg $ file_arg)

(* ---------- train ---------- *)

let train_cmd =
  let files_arg =
    Arg.(value & opt int 300 & info [ "files" ] ~doc:"Synthetic corpus size.")
  in
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
         ~doc:"Output model file.")
  in
  let w2v_arg =
    Arg.(value & flag & info [ "w2v" ]
         ~doc:"Train a word2vec (SGNS) model over AST-path contexts instead \
               of a CRF.")
  in
  let shard_dir_arg =
    Arg.(value & opt (some string) None & info [ "shard-dir" ] ~docv:"DIR"
         ~doc:"Out-of-core mode: extract into a shard set under DIR (reusing \
               a finished set already there) and stream training from disk \
               with bounded memory.")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH"
         ~doc:"Write the trainer state to PATH, atomically, after every \
               shard (needs --shard-dir). A killed run loses at most one \
               shard of work.")
  in
  let resume_arg =
    Arg.(value & flag & info [ "resume" ]
         ~doc:"Continue from --checkpoint PATH when it exists (fresh start \
               otherwise). The finished model is byte-identical to an \
               uninterrupted run with the same job count.")
  in
  let heap_arg =
    Arg.(value & opt (some int) None & info [ "max-heap-mb" ] ~docv:"MB"
         ~doc:"Memory budget for out-of-core runs: sizes extraction shards \
               so one shard's decoded working set stays within the budget.")
  in
  (* Size shards so one decoded shard fits the budget. The two record
     kinds differ by orders of magnitude: a graph record carries a
     whole file's nodes and factors (~16 KiB decoded on synthetic
     corpora), a training pair is two ids plus its share of the string
     table (~512 B). Estimates are deliberately conservative. *)
  let graphs_for_budget mb = max 16 (mb * 64) in
  let pairs_for_budget mb = max 1024 (mb * 2048) in
  let run lang n w2v shard_dir checkpoint resume max_heap_mb jobs out =
    handle_parse_errors @@ fun () ->
    (match (checkpoint, resume, shard_dir) with
    | Some _, _, None | None, true, _ ->
        Format.eprintf
          "error: --checkpoint needs --shard-dir, and --resume needs \
           --checkpoint@.";
        exit 2
    | _ -> ());
    let pool = pool_of_jobs jobs in
    let jobs_n = match pool with Some p -> Parallel.jobs p | None -> 1 in
    let records_per_shard =
      Option.map
        (if w2v then pairs_for_budget else graphs_for_budget)
        max_heap_mb
    in
    let sources () =
      let config =
        { Corpus.Gen.default with Corpus.Gen.n_files = n; seed = 42 }
      in
      Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
    in
    let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
    (* Reuse a finished shard set instead of re-extracting: that is
       what makes --resume cheap, and the set is immutable so the
       resumed run streams the exact records the killed run did. *)
    let shard_set ~extract dir =
      if Corpus.Shard.exists dir then begin
        Format.eprintf "pigeon train: reusing shard set in %s@." dir;
        Corpus.Shard.open_set dir
      end
      else begin
        let set, report = extract dir (sources ()) in
        Pigeon.Ingest.log ~label:(lang.Pigeon.Lang.name ^ " extract") report;
        set
      end
    in
    let load_ckpt path load =
      if resume && Sys.file_exists path then
        match load path with
        | Ok ck -> Some ck
        | Error d ->
            Format.eprintf "error: cannot resume:%a@." Lexkit.Diag.pp d;
            exit 1
      else None
    in
    let warn_jobs ck_jobs =
      if ck_jobs <> jobs_n then
        Format.eprintf
          "pigeon train: warning: checkpoint was written with %d job(s), \
           resuming with %d — the result will not be bit-identical to an \
           uninterrupted run@."
          ck_jobs jobs_n
    in
    if w2v then begin
      let sgns_config = Word2vec.Sgns.default_config in
      let model =
        match shard_dir with
        | None ->
            let elems, report =
              Pigeon.Ingest.run
                ~f:(fun _name src ->
                  Pigeon.W2v_task.pairs_of_source ~lang
                    ~mode:(Pigeon.W2v_task.Paths repr) src)
                (sources ())
            in
            Pigeon.Ingest.log ~label:(lang.Pigeon.Lang.name ^ " w2v") report;
            let pairs =
              List.concat_map
                (fun (name, ctxs) -> List.map (fun c -> (name, c)) ctxs)
                (List.concat elems)
            in
            Format.eprintf "training on %d pairs...@." (List.length pairs);
            Word2vec.Sgns.train ?pool ~config:sgns_config pairs
        | Some dir ->
            let set =
              shard_set dir ~extract:(fun dir srcs ->
                  Pigeon.W2v_task.extract_pair_shards ?records_per_shard ~lang
                    ~mode:(Pigeon.W2v_task.Paths repr) ~dir srcs)
            in
            let plan =
              Pigeon.W2v_task.plan_of_set
                ~min_count:sgns_config.Word2vec.Sgns.min_count set
            in
            let from =
              Option.bind checkpoint (fun path ->
                  load_ckpt path Word2vec.Serialize.checkpoint_load)
            in
            let config =
              match from with
              | Some ck ->
                  warn_jobs ck.Word2vec.Sgns.ck_jobs;
                  Format.eprintf "pigeon train: resuming at epoch %d, shard %d@."
                    ck.Word2vec.Sgns.ck_next_epoch ck.Word2vec.Sgns.ck_next_shard;
                  ck.Word2vec.Sgns.ck_config
              | None -> sgns_config
            in
            let on_shard =
              Option.map
                (fun path ~epoch:_ ~shard:_ ck ->
                  Word2vec.Serialize.checkpoint_save path ck)
                checkpoint
            in
            Format.eprintf "training on %d pairs in %d shards...@."
              (Array.fold_left ( + ) 0 plan.Pigeon.W2v_task.plan_sizes)
              (Corpus.Shard.n_shards set);
            Word2vec.Sgns.train_stream ?pool ~config
              ~words:plan.Pigeon.W2v_task.plan_words
              ~contexts:plan.Pigeon.W2v_task.plan_contexts
              ~shard_sizes:plan.Pigeon.W2v_task.plan_sizes
              ~pairs_of_shard:(Pigeon.W2v_task.plan_pairs plan)
              ?from ?on_shard ()
      in
      Word2vec.Serialize.save model out;
      Format.printf "wrote %s (%d words, %d contexts)@." out
        (Word2vec.Vocab.size model.Word2vec.Sgns.words)
        (Word2vec.Vocab.size model.Word2vec.Sgns.contexts)
    end
    else begin
      let model =
        match shard_dir with
        | None ->
            let graphs =
              Pigeon.Task.graphs_of_sources ~repr ~lang
                ~policy:Pigeon.Graphs.Locals (sources ())
            in
            Format.eprintf "training on %d graphs...@." (List.length graphs);
            Crf.Train.train ?pool graphs
        | Some dir ->
            let set =
              shard_set dir ~extract:(fun dir srcs ->
                  Pigeon.Task.extract_graph_shards ?pool ?records_per_shard
                    ~repr ~lang ~policy:Pigeon.Graphs.Locals ~dir srcs)
            in
            let n_shards = Corpus.Shard.n_shards set in
            if n_shards = 0 then begin
              Format.eprintf "error: the shard set in %s is empty@." dir;
              exit 1
            end;
            let from, config =
              match
                Option.bind checkpoint (fun path ->
                    load_ckpt path Crf.Serialize.checkpoint_load)
              with
              | Some ck ->
                  if ck.Crf.Serialize.ck_n_shards <> n_shards then begin
                    Format.eprintf
                      "error: checkpoint was taken over %d shards, the set \
                       has %d — re-extract or drop --resume@."
                      ck.Crf.Serialize.ck_n_shards n_shards;
                    exit 1
                  end;
                  warn_jobs ck.Crf.Serialize.ck_jobs;
                  Format.eprintf
                    "pigeon train: resuming at iteration %d, shard %d@."
                    ck.Crf.Serialize.ck_next_it ck.Crf.Serialize.ck_next_shard;
                  ( Some
                      ( ck.Crf.Serialize.ck_fast,
                        ck.Crf.Serialize.ck_next_it,
                        ck.Crf.Serialize.ck_next_shard ),
                    ck.Crf.Serialize.ck_config )
              | None -> (None, Crf.Train.default_config)
            in
            let on_shard =
              Option.map
                (fun path ~it ~shard m ->
                  let next_it, next_shard =
                    if shard + 1 = n_shards then (it + 1, 0) else (it, shard + 1)
                  in
                  Crf.Serialize.checkpoint_save path ~config ~next_it
                    ~next_shard ~n_shards ~jobs:jobs_n m)
                checkpoint
            in
            Format.eprintf "training on %d graphs in %d shards...@."
              (Corpus.Shard.total set) n_shards;
            Crf.Train.train_of_shards ?pool ~config ~n_shards
              ~graphs_of_shard:(Pigeon.Task.graphs_of_shard set)
              ?from ?on_shard ()
      in
      Crf.Serialize.save model out;
      Format.printf "wrote %s (%d features)@." out
        (Crf.Model.size (Lazy.force model.Crf.Train.weights))
    end
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train a variable-name model on a synthetic corpus and save it. \
             With --shard-dir, extraction streams to disk shards and \
             training streams them back with bounded memory; --checkpoint \
             and --resume make such runs kill-safe (a resumed single-job run \
             finishes byte-identical to an uninterrupted one).")
    Term.(const run $ lang_arg $ files_arg $ w2v_arg $ shard_dir_arg
          $ checkpoint_arg $ resume_arg $ heap_arg $ jobs_arg $ out_arg)

(* ---------- predict (from a saved model) ---------- *)

let load_crf_model path =
  match Crf.Serialize.load path with
  | Ok m -> m
  | Error d ->
      Format.eprintf "error: cannot load model:%a@." Lexkit.Diag.pp d;
      exit 1

let predict_cmd =
  let model_arg =
    Arg.(required & opt (some file) None & info [ "model" ] ~docv:"MODEL"
         ~doc:"Model file written by `pigeon train`.")
  in
  (* One-shot prediction goes through the exact code the daemon runs
     (Serve.Engine), which is what makes the serve byte-identity
     contract checkable: same input, same model, same pairs. The model
     is mapped, not copied — for a one-shot the load is most of the
     work, and mapped predictions are byte-identical (tested). *)
  let run lang model_path file =
    let model, storage =
      match Crf.Serialize.load_mapped model_path with
      | Ok ms -> ms
      | Error d ->
          Format.eprintf "error: cannot load model:%a@." Lexkit.Diag.pp d;
          exit 1
    in
    Option.iter
      (fun n -> Format.eprintf "pigeon predict: %s@." n)
      (Lexkit.Storage.note storage);
    let engine = Serve.Engine.create ~storage ~model () in
    match Serve.Engine.predict_one engine ~lang ~code:(read_file file) with
    | Ok pairs ->
        List.iter
          (fun (var, name) -> Format.printf "  %-16s -> %s@." var name)
          pairs
    | Error e ->
        Format.eprintf "error: [%s] %s@." e.Serve.Protocol.kind
          e.Serve.Protocol.msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Predict local-variable names for a file using a saved model.")
    Term.(const run $ lang_arg $ model_arg $ file_arg)

(* ---------- serve ---------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path.")

let serve_cmd =
  let model_arg =
    Arg.(required & opt (some file) None & info [ "model" ] ~docv:"MODEL"
         ~doc:"CRF model file written by `pigeon train`.")
  in
  let w2v_arg =
    Arg.(value & opt (some file) None & info [ "w2v" ] ~docv:"MODEL"
         ~doc:"Optional word2vec model, enables the `similar` op.")
  in
  let named_arg =
    Arg.(value & opt_all string [] & info [ "named-model" ] ~docv:"NAME=PATH"
         ~doc:"Preload an extra CRF model into the registry under NAME \
               (repeatable). Requests select it with a \"model\" field \
               (client: --model-name).")
  in
  let no_mmap_arg =
    Arg.(value & flag & info [ "no-mmap" ]
         ~doc:"Load models as heap copies instead of mapping v4 files \
               zero-copy.")
  in
  let max_mapped_arg =
    Arg.(value & opt int 0 & info [ "max-mapped-bytes" ] ~docv:"N"
         ~doc:"Evict least-recently-used non-default models once the mapped \
               bytes across the registry exceed N (0 = unbounded). Evicted \
               models revive on their next request.")
  in
  let max_session_arg =
    Arg.(value & opt int 0 & info [ "max-session-bytes" ] ~docv:"N"
         ~doc:"Evict least-recently-used edit sessions once their summed \
               extraction-cache bytes exceed N (0 = unbounded). An evicted \
               session's next edit answers \"no-session\"; clients re-open.")
  in
  let tcp_arg =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
         ~doc:"Also (or instead) listen on this TCP port.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Bind host for --tcp.")
  in
  let batch_arg =
    Arg.(value & opt int 16 & info [ "max-batch" ] ~docv:"N"
         ~doc:"Most requests fused into one batched inference round.")
  in
  let max_bytes_arg =
    Arg.(value & opt (some int) None & info [ "max-input-bytes" ] ~docv:"N"
         ~doc:"Per-request source size cap (default 8 MiB).")
  in
  let max_depth_arg =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~docv:"N"
         ~doc:"Per-request nesting depth cap (default 1000).")
  in
  let max_steps_arg =
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
         ~doc:"Per-request parse step budget (default 20M).")
  in
  let max_queue_arg =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_queue
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Most predict/similar requests queued before excess ones \
                   are shed with an \"overloaded\" error (0 = unbounded).")
  in
  let max_conns_arg =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_conns
         & info [ "max-conns" ] ~docv:"N"
             ~doc:"Most concurrent connections before excess ones are \
                   rejected with an \"overloaded\" error (0 = unbounded).")
  in
  let idle_timeout_arg =
    Arg.(value
         & opt float Serve.Server.default_config.Serve.Server.idle_timeout
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection I/O budget: close connections that stay \
                   silent (or stop draining replies) this long (0 = never).")
  in
  let run model_path w2v_path named no_mmap max_mapped_bytes max_session_bytes
      socket tcp host jobs max_batch max_bytes max_depth max_steps max_queue
      max_conns idle_timeout =
    if socket = None && tcp = None then begin
      Format.eprintf "error: pass --socket PATH and/or --tcp PORT@.";
      exit 2
    end;
    let mmap = not no_mmap in
    let named =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | Some i when i > 0 && i < String.length spec - 1 ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | _ ->
              Format.eprintf "error: --named-model wants NAME=PATH, got %S@."
                spec;
              exit 2)
        named
    in
    let note_line n = Format.eprintf "pigeon serve: %s@." n in
    let model, storage =
      if mmap then
        match Crf.Serialize.load_mapped model_path with
        | Ok (m, s) ->
            Option.iter note_line (Lexkit.Storage.note s);
            (m, s)
        | Error d ->
            Format.eprintf "error: cannot load model:%a@." Lexkit.Diag.pp d;
            exit 1
      else (load_crf_model model_path, Lexkit.Storage.heap)
    in
    let w2v_view, storage =
      match w2v_path with
      | None -> (None, storage)
      | Some p -> (
          if mmap then
            match Word2vec.Serialize.load_mapped p with
            | Ok (v, s) ->
                Option.iter note_line (Lexkit.Storage.note s);
                (Some v, Lexkit.Storage.merge storage s)
            | Error d ->
                Format.eprintf "error: cannot load w2v model:%a@."
                  Lexkit.Diag.pp d;
                exit 1
          else
            match Word2vec.Serialize.load p with
            | Ok m -> (Some (Word2vec.Sgns.view_of m), storage)
            | Error d ->
                Format.eprintf "error: cannot load w2v model:%a@."
                  Lexkit.Diag.pp d;
                exit 1)
    in
    let limits =
      let d = Lexkit.default_limits in
      {
        Lexkit.max_input_bytes =
          Option.value ~default:d.Lexkit.max_input_bytes max_bytes;
        max_depth = Option.value ~default:d.Lexkit.max_depth max_depth;
        max_parse_steps =
          Option.value ~default:d.Lexkit.max_parse_steps max_steps;
      }
    in
    let faults =
      match Serve.Faults.of_env () with
      | Ok f -> f
      | Error msg ->
          Format.eprintf "error: PIGEON_FAULTS: %s@." msg;
          exit 2
    in
    let pool = pool_of_jobs jobs in
    let engine =
      Serve.Engine.create ?w2v_view ~storage ~limits ~model_path ?w2v_path
        ~mmap ~max_mapped_bytes ~max_session_bytes ~model ()
    in
    List.iter
      (fun (name, path) ->
        match Serve.Engine.reload engine ~name ~model_path:path () with
        | Ok note ->
            Format.eprintf "pigeon serve: model %S loaded from %s@." name path;
            Option.iter note_line note
        | Error e ->
            Format.eprintf "error: cannot load named model %S: [%s] %s@." name
              e.Serve.Protocol.kind e.Serve.Protocol.msg;
            exit 1)
      named;
    let cfg =
      {
        Serve.Server.default_config with
        Serve.Server.unix_socket = socket;
        tcp = Option.map (fun p -> (host, p)) tcp;
        max_batch;
        max_queue;
        max_conns;
        idle_timeout;
        faults;
      }
    in
    let t =
      try Serve.Server.start ?pool engine cfg
      with e ->
        Format.eprintf "error: cannot start server: %s@." (Printexc.to_string e);
        exit 1
    in
    List.iter
      (fun s -> Format.eprintf "pigeon serve: listening on %s@." s)
      ((match socket with Some p -> [ p ] | None -> [])
      @ match tcp with Some p -> [ Printf.sprintf "%s:%d" host p ] | None -> []);
    (* Signal handlers only set flags; the polling loop below does the
       actual work from a plain thread context (mutexes and condition
       variables are not signal-safe). SIGTERM/SIGINT drain then stop;
       SIGHUP hot-reloads the model files from disk. *)
    let sig_stop = Atomic.make false in
    let sig_hup = Atomic.make false in
    let set_signal s h =
      try Sys.set_signal s (Sys.Signal_handle h)
      with Invalid_argument _ | Sys_error _ -> ()
    in
    set_signal Sys.sigint (fun _ -> Atomic.set sig_stop true);
    set_signal Sys.sigterm (fun _ -> Atomic.set sig_stop true);
    set_signal Sys.sighup (fun _ -> Atomic.set sig_hup true);
    while (not (Serve.Server.stopped t)) && not (Atomic.get sig_stop) do
      if Atomic.compare_and_set sig_hup true false then begin
        match Serve.Server.reload t with
        | Ok () -> Format.eprintf "pigeon serve: model reloaded (SIGHUP)@."
        | Error e ->
            Format.eprintf
              "pigeon serve: reload failed, keeping old model: [%s] %s@."
              e.Serve.Protocol.kind e.Serve.Protocol.msg
      end;
      Thread.delay 0.05
    done;
    if Atomic.get sig_stop then Serve.Server.request_stop t;
    Serve.Server.wait t;
    Format.eprintf "pigeon serve: stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived prediction daemon: load the model once, answer \
          newline-delimited JSON requests over a Unix (and optionally TCP) \
          socket, batching concurrent requests across the domain pool. \
          Overloads shed with structured errors (see --max-queue, \
          --max-conns, --idle-timeout); SIGHUP (or the reload op) hot-swaps \
          the model; SIGTERM/SIGINT drain then stop. Model files map \
          zero-copy by default (--no-mmap for heap copies); extra models \
          preload with --named-model and evict under --max-mapped-bytes. \
          Editor clients open edit sessions (open/edit/close ops) whose \
          incremental extraction caches evict under --max-session-bytes. Set \
          PIGEON_FAULTS to inject faults for chaos testing.")
    Term.(
      const run $ model_arg $ w2v_arg $ named_arg $ no_mmap_arg
      $ max_mapped_arg $ max_session_arg $ socket_arg $ tcp_arg $ host_arg
      $ jobs_arg $ batch_arg $ max_bytes_arg $ max_depth_arg $ max_steps_arg
      $ max_queue_arg $ max_conns_arg $ idle_timeout_arg)

(* ---------- client ---------- *)

let client_cmd =
  let tcp_arg =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
         ~doc:"Connect over TCP instead of the Unix socket.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
         ~doc:"Host for --tcp.")
  in
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("predict", `Predict); ("ping", `Ping); ("stats", `Stats);
                    ("shutdown", `Shutdown); ("similar", `Similar);
                    ("reload", `Reload); ("session", `Session) ])
          `Predict
      & info [ "op" ] ~docv:"OP"
          ~doc:"Request kind: predict (default), ping, stats, shutdown, \
                similar, reload, session (open FILE, apply each --edit, \
                close — one reply line per step).")
  in
  let edit_arg =
    Arg.(value & opt_all file [] & info [ "edit" ] ~docv:"FILE"
         ~doc:"With --op session: send this file as the next full-buffer \
               edit (repeatable; applied in order between open and close).")
  in
  let session_name_arg =
    Arg.(value & opt string "default" & info [ "session" ] ~docv:"NAME"
         ~doc:"Session (buffer) name for --op session.")
  in
  let word_arg =
    Arg.(value & opt (some string) None & info [ "word" ] ~docv:"WORD"
         ~doc:"Word for --op similar.")
  in
  let k_arg =
    Arg.(value & opt int 5 & info [ "k" ] ~docv:"N"
         ~doc:"Neighbor count for --op similar.")
  in
  let model_name_arg =
    Arg.(value & opt (some string) None & info [ "model-name" ] ~docv:"NAME"
         ~doc:"Registry model to run the request against (predict/similar), \
               or to load into with --op reload (default: the daemon's \
               default model).")
  in
  let reload_model_arg =
    Arg.(value & opt (some string) None & info [ "reload-model" ] ~docv:"PATH"
         ~doc:"CRF model path for --op reload (default: the daemon re-reads \
               the file it was started from).")
  in
  let reload_w2v_arg =
    Arg.(value & opt (some string) None & info [ "reload-w2v" ] ~docv:"PATH"
         ~doc:"word2vec model path for --op reload.")
  in
  let unload_arg =
    Arg.(value & opt (some string) None & info [ "unload" ] ~docv:"NAME"
         ~doc:"With --op reload: drop this model from the daemon's registry.")
  in
  let set_default_arg =
    Arg.(value & opt (some string) None & info [ "set-default" ] ~docv:"NAME"
         ~doc:"With --op reload: make this model the daemon's default.")
  in
  let timeout_arg =
    Arg.(value & opt float 10. & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Connect and reply-wait budget per attempt (0 = wait forever).")
  in
  let retries_arg =
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Connect attempts on transient failures (refused, socket file \
               missing, timeout), with exponential backoff plus jitter. Only \
               the connect is retried; a request is never replayed.")
  in
  let file_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Source file for --op predict (or the buffer --op session \
               opens).")
  in
  (* Exit codes: 0 ok reply, 3 structured error reply (including
     "overloaded" sheds — the daemon is up and said no), 4 daemon
     unreachable or unresponsive after the retry budget
     (connect-refused/timeout), 1 other transport failure, 2 usage —
     so shell scripts can tell "the daemon said no" from "the daemon
     is gone". *)
  let run socket tcp host op lang word k model_name reload_model reload_w2v
      unload set_default timeout retries session_name edits file =
    let timeout = if timeout <= 0. then None else Some timeout in
    let retry =
      { Serve.Client.default_retry with
        Serve.Client.attempts = max 1 retries }
    in
    let endpoint =
      match (socket, tcp) with
      | Some path, _ -> Serve.Client.Unix_sock path
      | None, Some port -> Serve.Client.Tcp (host, port)
      | None, None ->
          Format.eprintf "error: pass --socket PATH or --tcp PORT@.";
          exit 2
    in
    let describe = function
      | Serve.Client.Unix_sock p -> p
      | Serve.Client.Tcp (h, p) -> Printf.sprintf "%s:%d" h p
    in
    let unreachable what e =
      Format.eprintf
        "error: daemon unreachable: %s %s: %s (after %d attempt%s)@."
        what (describe endpoint) (Printexc.to_string e) retry.Serve.Client.attempts
        (if retry.Serve.Client.attempts = 1 then "" else "s");
      exit 4
    in
    let conn =
      match
        Serve.Client.connect ?connect_timeout:timeout ?read_timeout:timeout
          ~retry endpoint
      with
      | c -> c
      | exception (Unix.Unix_error _ as e) when Serve.Client.transient e ->
          unreachable "cannot connect to" e
      | exception e ->
          Format.eprintf "error: cannot connect to %s: %s@."
            (describe endpoint) (Printexc.to_string e);
          exit 1
    in
    let open Serve.Json in
    let named_model =
      match model_name with Some n -> [ ("model", Str n) ] | None -> []
    in
    let roundtrip line =
      match Serve.Client.request conn (to_string line) with
      | Some r -> r
      | None ->
          Format.eprintf "error: server closed the connection@.";
          exit 1
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
          Format.eprintf "error: no reply from %s within %.1fs@."
            (describe endpoint)
            (Option.value ~default:0. timeout);
          exit 4
      | exception e ->
          Format.eprintf "error: request failed: %s@." (Printexc.to_string e);
          exit 1
    in
    (* Session mode holds the one connection across the whole
       open/edit*/close exchange (sessions are connection-scoped) and
       prints each reply line as it arrives. *)
    (match op with
    | `Session ->
        let f =
          match file with
          | Some f -> f
          | None ->
              Format.eprintf
                "error: --op session needs a FILE argument (the buffer to \
                 open)@.";
              exit 2
        in
        let sess = [ ("session", Str session_name) ] in
        let all_ok = ref true in
        let step line =
          let reply = roundtrip line in
          print_endline reply;
          if not (Serve.Protocol.reply_ok reply) then all_ok := false
        in
        step
          (Obj
             ([ ("op", Str "open"); ("id", Num 0.) ]
             @ sess
             @ [ ("lang", Str lang.Pigeon.Lang.name);
                 ("code", Str (read_file f)) ]
             @ named_model));
        List.iteri
          (fun i e ->
            step
              (Obj
                 ([ ("op", Str "edit"); ("id", Num (float_of_int (i + 1))) ]
                 @ sess
                 @ [ ("code", Str (read_file e)) ])))
          edits;
        step
          (Obj
             ([ ("op", Str "close");
                ("id", Num (float_of_int (List.length edits + 1))) ]
             @ sess));
        Serve.Client.close conn;
        exit (if !all_ok then 0 else 3)
    | _ -> ());
    let line =
      match op with
      | `Session -> assert false (* handled above *)
      | `Ping -> Obj [ ("op", Str "ping"); ("id", Num 0.) ]
      | `Stats -> Obj [ ("op", Str "stats"); ("id", Num 0.) ]
      | `Shutdown -> Obj [ ("op", Str "shutdown"); ("id", Num 0.) ]
      | `Reload -> (
          match (unload, set_default) with
          | Some _, Some _ ->
              Format.eprintf "error: --unload and --set-default are exclusive@.";
              exit 2
          | Some n, None ->
              Obj [ ("op", Str "reload"); ("id", Num 0.); ("unload", Str n) ]
          | None, Some n ->
              Obj
                [ ("op", Str "reload"); ("id", Num 0.); ("set_default", Str n) ]
          | None, None ->
              Obj
                ([ ("op", Str "reload"); ("id", Num 0.) ]
                @ (match model_name with
                  | Some n -> [ ("name", Str n) ]
                  | None -> [])
                @ (match reload_model with
                  | Some p -> [ ("model", Str p) ]
                  | None -> [])
                @
                match reload_w2v with Some p -> [ ("w2v", Str p) ] | None -> []))
      | `Similar -> (
          match word with
          | None ->
              Format.eprintf "error: --op similar needs --word@.";
              exit 2
          | Some w ->
              Obj
                ([ ("op", Str "similar"); ("id", Num 0.); ("word", Str w);
                   ("k", Num (float_of_int k)) ]
                @ named_model))
      | `Predict -> (
          match file with
          | None ->
              Format.eprintf "error: --op predict needs a FILE argument@.";
              exit 2
          | Some f ->
              Obj
                ([ ("op", Str "predict"); ("id", Num 0.);
                   ("lang", Str lang.Pigeon.Lang.name);
                   ("code", Str (read_file f)) ]
                @ named_model))
    in
    let reply = roundtrip line in
    Serve.Client.close conn;
    (* The raw JSON line first — scripts parse it — then, for stats, a
       readable per-model table. *)
    print_endline reply;
    (if op = `Stats && Serve.Protocol.reply_ok reply then
       match parse reply with
       | Ok j ->
           let stats = member "stats" j in
           let cache_line indent c =
             let num f = Option.value ~default:0 (int_field f c) in
             Format.printf
               "%shits=%d misses=%d paths=%d bytes=%dB evictions=%d@." indent
               (num "hits") (num "misses") (num "paths") (num "bytes")
               (num "evictions")
           in
           (match Option.bind stats (member "models") with
           | Some (Arr models) ->
               Format.printf "models:@.";
               List.iter
                 (fun m ->
                   let str f = Option.value ~default:"-" (string_field f m) in
                   let num f = Option.value ~default:0 (int_field f m) in
                   let flag f = bool_field f m = Some true in
                   Format.printf
                     "  %-16s %s%s  storage=%s  mapped=%dB  last-used=%s  \
                      evictions=%d@."
                     (str "name")
                     (if flag "default" then "default," else "")
                     (if flag "loaded" then "loaded" else "evicted")
                     (str "storage") (num "mapped_bytes")
                     (let lu = num "last_used_ms" in
                      if lu < 0 then "never" else Printf.sprintf "%dms ago" lu)
                     (num "evictions"))
                 models
           | _ -> ());
           (match Option.bind stats (member "sessions") with
           | Some (Arr ((_ :: _) as sessions)) ->
               Format.printf "sessions:@.";
               List.iter
                 (fun s ->
                   let str f = Option.value ~default:"-" (string_field f s) in
                   let num f = Option.value ~default:0 (int_field f s) in
                   Format.printf "  %-16s conn=%d lang=%s edits=%d  cache: "
                     (str "name") (num "conn") (str "lang") (num "edits");
                   match member "cache" s with
                   | Some c -> cache_line "" c
                   | None -> Format.printf "-@.")
                 sessions
           | _ -> ());
           (match Option.bind stats (member "session_cache") with
           | Some c ->
               Format.printf "session cache (aggregate):@.";
               cache_line "  " c
           | None -> ())
       | Error _ -> ());
    if Serve.Protocol.reply_ok reply then exit 0 else exit 3
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running `pigeon serve` daemon and print \
             the raw JSON reply. Exit codes: 0 ok, 3 the daemon replied with \
             a structured error, 4 the daemon is unreachable or unresponsive \
             (after --retries), 1 other transport failure, 2 usage.")
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ op_arg $ lang_arg
      $ word_arg $ k_arg $ model_name_arg $ reload_model_arg $ reload_w2v_arg
      $ unload_arg $ set_default_arg $ timeout_arg $ retries_arg
      $ session_name_arg $ edit_arg $ file_opt_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR")
  in
  let run dir =
    handle_parse_errors @@ fun () ->
    let entries =
      Sys.readdir dir |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun name ->
             let path = Filename.concat dir name in
             if Sys.is_directory path then None
             else Some { Corpus.Dataset.path; source = read_file path })
    in
    let deduped = Corpus.Dataset.dedup entries in
    let s = Corpus.Dataset.stats deduped in
    Format.printf "%d files (%d duplicates removed), %d bytes@."
      s.Corpus.Dataset.files
      (List.length entries - List.length deduped)
      s.Corpus.Dataset.bytes
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Corpus statistics of a directory (after dedup).")
    Term.(const run $ dir_arg)

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  let doc = "AST-path representations for predicting program properties" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "pigeon" ~version:"1.0.0" ~doc)
          [ paths_cmd; ast_cmd; gen_cmd; rename_cmd; train_cmd; predict_cmd;
            serve_cmd; client_cmd; stats_cmd ]))
