(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) on the synthetic corpora.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe table2-var      -- one experiment
     dune exec bench/main.exe --quick all     -- smaller corpora

   Experiments: table1 table2-var table2-method table2-type table3
   table4 fig10 fig11 fig12 fault parallel train intern serve incremental
   oocore micro.

   Absolute numbers are not expected to match the paper (our corpora
   are synthetic and laptop-sized); the *shape* — which representation
   wins, by roughly what factor, and where the knees fall — is the
   reproduction target. EXPERIMENTS.md records paper-vs-measured. *)

let quick = ref false
let scaled n = if !quick then max 40 (n / 4) else n

(* ---------- corpora ---------- *)

let corpus_cache :
    (string, (string * string) list * (string * string) list) Hashtbl.t =
  Hashtbl.create 8

let corpus_for (lang : Pigeon.Lang.t) ~n =
  let key = Printf.sprintf "%s-%d" lang.Pigeon.Lang.name n in
  match Hashtbl.find_opt corpus_cache key with
  | Some split -> split
  | None ->
      let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed = 2018 } in
      let sources =
        Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
      in
      let entries =
        List.map (fun (path, source) -> { Corpus.Dataset.path; source }) sources
      in
      let s = Corpus.Dataset.split_corpus ~seed:7 (Corpus.Dataset.dedup entries) in
      let pairs xs =
        List.map (fun e -> (e.Corpus.Dataset.path, e.Corpus.Dataset.source)) xs
      in
      let split = (pairs s.Corpus.Dataset.train, pairs s.Corpus.Dataset.test) in
      Hashtbl.add corpus_cache key split;
      split

let crf_config iters =
  { Crf.Train.default_config with Crf.Train.iterations = iters }

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let pct x = 100. *. x

(* Surface what a corpus run lost. Clean runs stay silent; any skip is
   printed with its per-kind tally so a table row is never silently
   computed on less data than the header claims. *)
let print_skips name (r : Pigeon.Task.result) =
  let one label (rep : Pigeon.Ingest.report) =
    if rep.Pigeon.Ingest.skipped <> [] then
      Printf.printf "  ! %s %s: %s\n%!" name label (Pigeon.Ingest.to_string rep)
  in
  one "train" r.Pigeon.Task.train_skips;
  one "test" r.Pigeon.Task.test_skips

(* ---------- Table 1: dataset sizes ---------- *)

let table1 () =
  header "Table 1 - amounts of data used per language (synthetic corpora)";
  Printf.printf "%-12s %8s %12s %10s %8s %10s\n" "Language" "files" "bytes"
    "dup-rm" "test" "test-bytes";
  List.iter
    (fun (lang : Pigeon.Lang.t) ->
      let n = scaled 400 in
      let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed = 2018 } in
      let sources =
        Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
      in
      let entries =
        List.map (fun (path, source) -> { Corpus.Dataset.path; source }) sources
      in
      let deduped = Corpus.Dataset.dedup entries in
      let split = Corpus.Dataset.split_corpus ~seed:7 deduped in
      let all_stats = Corpus.Dataset.stats deduped in
      let test_stats = Corpus.Dataset.stats split.Corpus.Dataset.test in
      Printf.printf "%-12s %8d %12d %10d %8d %10d\n%!" lang.Pigeon.Lang.name
        all_stats.Corpus.Dataset.files all_stats.Corpus.Dataset.bytes
        (List.length entries - List.length deduped)
        test_stats.Corpus.Dataset.files test_stats.Corpus.Dataset.bytes)
    Pigeon.Lang.all

(* ---------- Table 2 (top): variable names ---------- *)

let table2_var () =
  header "Table 2 (top) - variable-name prediction with CRFs";
  Printf.printf "%-12s %-28s %9s %9s  %s\n" "Language" "Representation" "acc(%)"
    "train(s)" "params";
  let iters = 10 in
  List.iter
    (fun (lang : Pigeon.Lang.t) ->
      let train, test = corpus_for lang ~n:(scaled 240) in
      let row name acc secs params =
        Printf.printf "%-12s %-28s %9.1f %9.1f  %s\n%!" lang.Pigeon.Lang.name
          name (pct acc) secs params
      in
      let r =
        Pigeon.Task.run_crf ~crf_config:(crf_config iters) ~lang
          ~policy:Pigeon.Graphs.Locals ~train ~test ()
      in
      print_skips lang.Pigeon.Lang.name r;
      let cfg = lang.Pigeon.Lang.tuned in
      let oov =
        let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
        Crf.Train.oov_rate r.Pigeon.Task.model
          (Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
             test)
      in
      row "AST paths (this work)" r.Pigeon.Task.summary.Pigeon.Metrics.accuracy
        r.Pigeon.Task.train_seconds
        (Printf.sprintf "%d/%d  (test OoV %.1f%%)" cfg.Astpath.Config.max_length
           cfg.Astpath.Config.max_width (100. *. oov));
      let nopath_repr =
        {
          (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()) with
          Pigeon.Graphs.abstraction = Astpath.Abstraction.No_paths;
        }
      in
      let r0 =
        Pigeon.Task.run_crf ~repr:nopath_repr ~crf_config:(crf_config iters)
          ~lang ~policy:Pigeon.Graphs.Locals ~train ~test ()
      in
      row "no-paths" r0.Pigeon.Task.summary.Pigeon.Metrics.accuracy
        r0.Pigeon.Task.train_seconds "-";
      match lang.Pigeon.Lang.name with
      | "JavaScript" ->
          (* Unary-factor ablation (paper Section 5.1: unary factors
             from paths between occurrences of the same element
             "increase accuracy by about 1.5%"). *)
          let no_unary =
            {
              (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ())
              with
              Pigeon.Graphs.use_unary = false;
            }
          in
          let ru =
            Pigeon.Task.run_crf ~repr:no_unary ~crf_config:(crf_config iters)
              ~lang ~policy:Pigeon.Graphs.Locals ~train ~test ()
          in
          row "  AST paths, no unary factors"
            ru.Pigeon.Task.summary.Pigeon.Metrics.accuracy
            ru.Pigeon.Task.train_seconds "7/3";
          let t0 = Unix.gettimeofday () in
          let s =
            Baselines.Unuglify.run ~crf_config:(crf_config iters) ~lang ~train
              ~test ()
          in
          row "UnuglifyJS-style relations" s.Pigeon.Metrics.accuracy
            (Unix.gettimeofday () -. t0)
            "stmt-local";
          (* Trainer ablation (EXPERIMENTS.md documents why): under the
             slower structured-perceptron trainer the statement-local
             baseline benefits disproportionately at this corpus scale. *)
          let structured =
            {
              (crf_config iters) with
              Crf.Train.trainer = Crf.Fast.Structured;
            }
          in
          let rs =
            Pigeon.Task.run_crf ~crf_config:structured ~lang
              ~policy:Pigeon.Graphs.Locals ~train ~test ()
          in
          row "  AST paths, structured trainer"
            rs.Pigeon.Task.summary.Pigeon.Metrics.accuracy
            rs.Pigeon.Task.train_seconds "7/3";
          let t0 = Unix.gettimeofday () in
          let us =
            Baselines.Unuglify.run ~crf_config:structured ~lang ~train ~test ()
          in
          row "  stmt-local, structured trainer" us.Pigeon.Metrics.accuracy
            (Unix.gettimeofday () -. t0)
            "stmt-local"
      | "Java" ->
          let s = Baselines.Rule_based.evaluate test in
          row "rule-based" s.Pigeon.Metrics.accuracy 0.0 "-";
          let t0 = Unix.gettimeofday () in
          let s =
            Baselines.Ngram.run ~n:4 ~crf_config:(crf_config iters) ~lang ~train
              ~test ()
          in
          row "CRFs + 4-grams" s.Pigeon.Metrics.accuracy
            (Unix.gettimeofday () -. t0)
            "n=4"
      | _ -> ())
    Pigeon.Lang.all

(* ---------- Table 2 (middle): method names ---------- *)

let table2_method () =
  header "Table 2 (middle) - method-name prediction with CRFs";
  Printf.printf "%-12s %-28s %9s %7s  %s\n" "Language" "Representation" "acc(%)"
    "F1" "params";
  let iters = 10 in
  List.iter
    (fun (lang : Pigeon.Lang.t) ->
      let train, test = corpus_for lang ~n:(scaled 240) in
      let policy = Pigeon.Graphs.Methods { internal_only = false } in
      let r =
        Pigeon.Task.run_crf ~crf_config:(crf_config iters) ~lang ~policy ~train
          ~test ()
      in
      print_skips lang.Pigeon.Lang.name r;
      let cfg = lang.Pigeon.Lang.tuned_method in
      Printf.printf "%-12s %-28s %9.1f %7.1f  %d/%d\n%!" lang.Pigeon.Lang.name
        "AST paths (this work)"
        (pct r.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        (pct r.Pigeon.Task.summary.Pigeon.Metrics.f1)
        cfg.Astpath.Config.max_length cfg.Astpath.Config.max_width;
      let r_int =
        Pigeon.Task.run_crf ~crf_config:(crf_config iters) ~lang
          ~policy:(Pigeon.Graphs.Methods { internal_only = true })
          ~train ~test ()
      in
      Printf.printf "%-12s %-28s %9.1f %7.1f\n%!" "" "  (internal paths only)"
        (pct r_int.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        (pct r_int.Pigeon.Task.summary.Pigeon.Metrics.f1);
      let nopath_repr =
        {
          (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned_method ())
          with
          Pigeon.Graphs.abstraction = Astpath.Abstraction.No_paths;
        }
      in
      let r0 =
        Pigeon.Task.run_crf ~repr:nopath_repr ~crf_config:(crf_config iters)
          ~lang ~policy ~train ~test ()
      in
      Printf.printf "%-12s %-28s %9.1f %7.1f\n%!" "" "  no-paths"
        (pct r0.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        (pct r0.Pigeon.Task.summary.Pigeon.Metrics.f1);
      if String.equal lang.Pigeon.Lang.name "Java" then begin
        let s = Baselines.Conv_attention.run ~lang ~train ~test () in
        Printf.printf "%-12s %-28s %9.1f %7.1f\n%!" ""
          "  conv-attention substitute" (pct s.Pigeon.Metrics.accuracy)
          (pct s.Pigeon.Metrics.f1)
      end)
    [ Pigeon.Lang.javascript; Pigeon.Lang.java; Pigeon.Lang.python ]

(* ---------- Table 2 (bottom): full types ---------- *)

let table2_type () =
  header "Table 2 (bottom) - full-type prediction in Java";
  let train, test = corpus_for Pigeon.Lang.java ~n:(scaled 240) in
  let r = Pigeon.Task.run_full_types ~crf_config:(crf_config 6) ~train ~test () in
  print_skips "Java-typed" r;
  let baseline = Pigeon.Task.string_of_type_baseline test in
  Printf.printf "%-32s %9s\n" "Model" "acc(%)";
  Printf.printf "%-32s %9.1f  (params 4/1, n=%d)\n" "AST paths (this work)"
    (pct r.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
    r.Pigeon.Task.summary.Pigeon.Metrics.n;
  Printf.printf "%-32s %9.1f\n%!" "naive java.lang.String baseline"
    (pct baseline.Pigeon.Metrics.accuracy)

(* ---------- Table 3: word2vec ---------- *)

let table3 () =
  header "Table 3 - variable names with word2vec (JavaScript)";
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 300) in
  let sgns_config =
    { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 20 }
  in
  Printf.printf "%-44s %9s\n" "Context representation" "acc(%)";
  List.iter
    (fun mode ->
      let r = Pigeon.W2v_task.run ~sgns_config ~lang ~mode ~train ~test () in
      Printf.printf "%-44s %9.1f\n%!"
        (Pigeon.W2v_task.mode_name mode)
        (pct r.Pigeon.W2v_task.summary.Pigeon.Metrics.accuracy))
    [
      Pigeon.W2v_task.Linear_tokens 2;
      Pigeon.W2v_task.Path_neighbors lang.Pigeon.Lang.tuned;
      Pigeon.W2v_task.Paths
        (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ());
    ]

(* ---------- Table 4: qualitative probes ---------- *)

let table4 () =
  header "Table 4 - top-k candidates and semantic similarity";
  let lang = Pigeon.Lang.javascript in
  let train, _ = corpus_for lang ~n:(scaled 300) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals train
  in
  let model = Crf.Train.train ~config:(crf_config 6) graphs in
  let fig1a =
    "var d = false;\nwhile (!d) { doSomething(); if (someCondition()) { d = true; } }\n"
  in
  Printf.printf "(a) candidates for the variable [d] of Fig. 1a:\n";
  List.iteri
    (fun i (name, _) -> Printf.printf "   %d. %s\n" (i + 1) name)
    (Pigeon.Similarity.crf_top_k ~model ~repr ~lang ~source:fig1a ~var:"d" ~k:8);
  let w2v =
    Pigeon.W2v_task.run
      ~sgns_config:
        { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 20 }
      ~lang ~mode:(Pigeon.W2v_task.Paths repr) ~train ~test:[] ()
  in
  Printf.printf "(b) semantic similarity among names:\n";
  List.iter
    (fun (name, neighbors) ->
      Printf.printf "   %-10s ~ %s\n" name (String.concat " ~ " neighbors))
    (Pigeon.Similarity.w2v_neighbors ~model:w2v.Pigeon.W2v_task.model
       ~names:[ "done"; "items"; "item"; "count"; "request"; "i"; "result" ]
       ~k:3);
  print_string "";
  flush stdout

(* ---------- Fig. 10: length/width grid ---------- *)

let fig10 () =
  header "Fig. 10 - accuracy vs max_length and max_width (JS variable names)";
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 160) in
  let eval config =
    let repr = Pigeon.Graphs.default_repr ~config () in
    (Pigeon.Task.run_crf ~repr ~crf_config:(crf_config 10) ~lang
       ~policy:Pigeon.Graphs.Locals ~train ~test ())
      .Pigeon.Task.summary.Pigeon.Metrics.accuracy
  in
  let points =
    Pigeon.Grid.sweep ~lengths:[ 3; 4; 5; 6; 7 ] ~widths:[ 1; 2; 3 ] ~eval
  in
  Printf.printf "%-10s %8s %8s %8s\n" "max_length" "w=1" "w=2" "w=3";
  List.iter
    (fun l ->
      Printf.printf "%-10d" l;
      List.iter
        (fun w ->
          let p =
            List.find
              (fun p -> p.Pigeon.Grid.length = l && p.Pigeon.Grid.width = w)
              points
          in
          Printf.printf " %8.1f" (pct p.Pigeon.Grid.accuracy))
        [ 1; 2; 3 ];
      print_newline ())
    [ 3; 4; 5; 6; 7 ];
  let u = Baselines.Unuglify.run ~crf_config:(crf_config 10) ~lang ~train ~test () in
  Printf.printf "UnuglifyJS-style reference: %.1f\n" (pct u.Pigeon.Metrics.accuracy);
  let best = Pigeon.Grid.best points in
  Printf.printf "best: length=%d width=%d (%.1f%%)\n%!" best.Pigeon.Grid.length
    best.Pigeon.Grid.width
    (pct best.Pigeon.Grid.accuracy)

(* ---------- Fig. 11: downsampling ---------- *)

let fig11 () =
  header "Fig. 11 - downsampling keep-probability p (JS variable names)";
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 160) in
  Printf.printf "%-6s %9s %10s\n" "p" "acc(%)" "train(s)";
  List.iter
    (fun p ->
      let repr =
        {
          (Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned ()) with
          Pigeon.Graphs.downsample_p = p;
        }
      in
      let r =
        Pigeon.Task.run_crf ~repr ~crf_config:(crf_config 8) ~lang
          ~policy:Pigeon.Graphs.Locals ~train ~test ()
      in
      Printf.printf "%-6.1f %9.1f %10.1f\n%!" p
        (pct r.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        r.Pigeon.Task.train_seconds)
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

(* ---------- Fig. 12: abstraction ladder ---------- *)

let fig12 () =
  header
    "Fig. 12 - path abstractions: accuracy vs training time (Java variable names)";
  (* Run at the paper's Java setting (6/3 — longer paths than our
     corpus-tuned 5/2) on a larger corpus, so the abstraction level has
     a path vocabulary to shrink and a visible training-time effect. *)
  let lang = Pigeon.Lang.java in
  let train, test = corpus_for lang ~n:(scaled 400) in
  let config =
    Astpath.Config.make ~include_semi_paths:true ~max_length:6 ~max_width:3 ()
  in
  Printf.printf "%-16s %9s %10s\n" "abstraction" "acc(%)" "train(s)";
  List.iter
    (fun a ->
      let repr =
        {
          (Pigeon.Graphs.default_repr ~config ()) with
          Pigeon.Graphs.abstraction = a;
        }
      in
      let r =
        Pigeon.Task.run_crf ~repr ~crf_config:(crf_config 10) ~lang
          ~policy:Pigeon.Graphs.Locals ~train ~test ()
      in
      Printf.printf "%-16s %9.1f %10.1f\n%!" (Astpath.Abstraction.name a)
        (pct r.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        r.Pigeon.Task.train_seconds)
    (List.rev Astpath.Abstraction.all)

(* ---------- fault injection: corrupted corpora ---------- *)

(* Robustness check, not a paper figure: corrupt ~10% of every
   language's training corpus (binary garbage, a deep-nesting bomb, an
   unterminated string) and demand that training still completes, that
   the skip tally names exactly the injected files, and that accuracy
   on the clean test set stays sane. A mismatch is a bug in the
   ingestion layer, so it exits non-zero. *)
let fault () =
  header "Fault injection - training must survive a 10%-corrupt corpus";
  Printf.printf "%-12s %9s %9s %9s  %s\n" "Language" "injected" "skipped"
    "acc(%)" "skip kinds";
  let failures = ref 0 in
  List.iter
    (fun (lang : Pigeon.Lang.t) ->
      let train, test = corpus_for lang ~n:(scaled 160) in
      let corrupted = ref [] in
      let train' =
        List.mapi
          (fun i (path, src) ->
            if i mod 10 <> 3 then (path, src)
            else begin
              corrupted := path :: !corrupted;
              let src' =
                match i / 10 mod 3 with
                | 0 ->
                    (* recursion bomb: far beyond the depth limit *)
                    String.make 50_000 '('
                | 1 -> "\"an unterminated string literal\n  spilling over"
                | _ ->
                    (* binary garbage splattered over a real prefix *)
                    "\x00\x01\xfe\xff garbage "
                    ^ String.sub src 0 (min 40 (String.length src))
              in
              (path, src')
            end)
          train
      in
      let injected = List.length !corrupted in
      let r =
        Pigeon.Task.run_crf ~crf_config:(crf_config 4) ~lang
          ~policy:Pigeon.Graphs.Locals ~train:train' ~test ()
      in
      let skips = r.Pigeon.Task.train_skips in
      let skipped_files =
        List.map (fun s -> s.Pigeon.Ingest.file) skips.Pigeon.Ingest.skipped
      in
      let kinds =
        Pigeon.Ingest.counts skips
        |> List.map (fun (k, n) ->
               Printf.sprintf "%s:%d" (Lexkit.Diag.kind_name k) n)
        |> String.concat " "
      in
      Printf.printf "%-12s %9d %9d %9.1f  %s\n%!" lang.Pigeon.Lang.name
        injected
        (List.length skipped_files)
        (pct r.Pigeon.Task.summary.Pigeon.Metrics.accuracy)
        kinds;
      let missed =
        List.filter (fun p -> not (List.mem p skipped_files)) !corrupted
      in
      let spurious =
        List.filter (fun p -> not (List.mem p !corrupted)) skipped_files
      in
      if missed <> [] || spurious <> [] then begin
        incr failures;
        List.iter
          (Printf.printf "  FAIL: corrupt file not skipped: %s\n%!")
          missed;
        List.iter
          (Printf.printf "  FAIL: clean file skipped: %s\n%!")
          spurious
      end;
      if r.Pigeon.Task.test_skips.Pigeon.Ingest.skipped <> [] then begin
        incr failures;
        Printf.printf "  FAIL: clean test corpus reported skips\n%!"
      end)
    Pigeon.Lang.all;
  if !failures = 0 then
    Printf.printf "fault injection: skip tallies exact for all languages\n%!"
  else begin
    Printf.printf "fault injection: %d tally mismatches\n%!" !failures;
    exit 1
  end

(* ---------- extraction throughput (BENCH_extract.json) ---------- *)

(* The seed's extraction pipeline, kept verbatim as the measured
   baseline: parent-chain lca, chain-walk width, and list-allocating
   context construction, in the original quadratic double loop. *)
module Naive_extract = struct
  let lca idx a b =
    let a = ref a and b = ref b in
    while Ast.Index.depth idx !a > Ast.Index.depth idx !b do
      a := Ast.Index.parent idx !a
    done;
    while Ast.Index.depth idx !b > Ast.Index.depth idx !a do
      b := Ast.Index.parent idx !b
    done;
    while !a <> !b do
      a := Ast.Index.parent idx !a;
      b := Ast.Index.parent idx !b
    done;
    !a

  let child_toward idx ~lca n =
    let rec go n =
      if Ast.Index.parent idx n = lca then n else go (Ast.Index.parent idx n)
    in
    go n

  let width_between idx ~lca a b =
    if a = lca || b = lca then 0
    else
      abs
        (Ast.Index.child_rank idx (child_toward idx ~lca a)
        - Ast.Index.child_rank idx (child_toward idx ~lca b))

  let within idx (cfg : Astpath.Config.t) a b =
    let l = lca idx a b in
    let len =
      Ast.Index.depth idx a + Ast.Index.depth idx b
      - (2 * Ast.Index.depth idx l)
    in
    len >= 1
    && len <= cfg.Astpath.Config.max_length
    && width_between idx ~lca:l a b <= cfg.Astpath.Config.max_width

  let context idx a b =
    let l = lca idx a b in
    let up =
      List.filter (fun n -> n <> l) (Ast.Index.path_up idx a ~stop:l)
      |> List.map (Ast.Index.label idx)
    in
    let down =
      List.filter (fun n -> n <> l) (Ast.Index.path_up idx b ~stop:l)
      |> List.rev
      |> List.map (Ast.Index.label idx)
    in
    let value n =
      match Ast.Index.value idx n with
      | Some v -> v
      | None -> Ast.Index.label idx n
    in
    ( value a,
      Astpath.Path.of_chain ~up ~top:(Ast.Index.label idx l) ~down,
      value b )

  let leaf_pairs idx cfg =
    let leaves = Ast.Index.leaves idx in
    let n = Array.length leaves in
    let acc = ref [] in
    for j = n - 1 downto 1 do
      for i = j - 1 downto 0 do
        let a = leaves.(i) and b = leaves.(j) in
        if within idx cfg a b then acc := context idx a b :: !acc
      done
    done;
    !acc
end

let extract_bench () =
  Printf.printf "\nextraction throughput (largest synthetic corpora)\n";
  Printf.printf "%-12s %10s %12s %12s %8s %s\n" "Language" "contexts"
    "naive c/s" "iter c/s" "speedup" "bytes/ctx naive->iter";
  let timed f =
    (* best of 3 runs; allocation from the first (it is deterministic) *)
    let run () =
      let a0 = Gc.allocated_bytes () in
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0, Gc.allocated_bytes () -. a0)
    in
    let r, t, a = run () in
    let t =
      List.fold_left
        (fun best _ ->
          let _, t', _ = run () in
          min best t')
        t [ 1; 2 ]
    in
    (r, t, a)
  in
  let rows =
    List.map
      (fun (lang : Pigeon.Lang.t) ->
        let n_files = scaled 400 in
        let config =
          { Corpus.Gen.default with Corpus.Gen.n_files; seed = 2018 }
        in
        let idxs =
          List.filter_map
            (fun (_, src) ->
              match lang.Pigeon.Lang.parse_tree src with
              | t -> Some (Ast.Index.build t)
              | exception Lexkit.Error _ -> None)
            (Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang)
        in
        let cfg = lang.Pigeon.Lang.tuned in
        let naive_n, naive_t, naive_a =
          timed (fun () ->
              List.fold_left
                (fun n idx ->
                  n + List.length (Naive_extract.leaf_pairs idx cfg))
                0 idxs)
        in
        let iter_n, iter_t, iter_a =
          timed (fun () ->
              let n = ref 0 in
              List.iter
                (fun idx -> Astpath.Extract.iter idx cfg (fun _ -> incr n))
                idxs;
              !n)
        in
        assert (naive_n = iter_n);
        let naive_cps = float naive_n /. naive_t
        and iter_cps = float iter_n /. iter_t in
        Printf.printf "%-12s %10d %12.0f %12.0f %7.1fx %.0f -> %.0f\n%!"
          lang.Pigeon.Lang.name iter_n naive_cps iter_cps
          (iter_cps /. naive_cps)
          (naive_a /. float (max 1 naive_n))
          (iter_a /. float (max 1 iter_n));
        ( lang.Pigeon.Lang.name,
          List.length idxs,
          iter_n,
          naive_t,
          iter_t,
          naive_a,
          iter_a ))
      Pigeon.Lang.all
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let total_n =
    List.fold_left (fun acc (_, _, n, _, _, _, _) -> acc + n) 0 rows
  in
  let t_naive = sum (fun (_, _, _, t, _, _, _) -> t)
  and t_iter = sum (fun (_, _, _, _, t, _, _) -> t) in
  let speedup = float total_n /. t_iter /. (float total_n /. t_naive) in
  Printf.printf "%-12s %10d %12.0f %12.0f %7.1fx\n%!" "TOTAL" total_n
    (float total_n /. t_naive)
    (float total_n /. t_iter)
    speedup;
  let oc = open_out "BENCH_extract.json" in
  Printf.fprintf oc "{\n  \"bench\": \"path-extraction\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n  \"languages\": [\n" !quick;
  List.iteri
    (fun i (name, files, n, tn, ti, an, ai) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"files\": %d, \"contexts\": %d,\n\
        \     \"naive_seconds\": %.4f, \"iter_seconds\": %.4f,\n\
        \     \"naive_contexts_per_sec\": %.0f, \"iter_contexts_per_sec\": \
         %.0f,\n\
        \     \"speedup\": %.2f,\n\
        \     \"naive_bytes_per_context\": %.0f, \"iter_bytes_per_context\": \
         %.0f}%s\n"
        name files n tn ti
        (float n /. tn)
        (float n /. ti)
        (float n /. ti /. (float n /. tn))
        (an /. float (max 1 n))
        (ai /. float (max 1 n))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"total\": {\"contexts\": %d, \"naive_seconds\": %.4f, \
     \"iter_seconds\": %.4f,\n\
    \            \"naive_contexts_per_sec\": %.0f, \
     \"iter_contexts_per_sec\": %.0f, \"speedup\": %.2f}\n"
    total_n t_naive t_iter
    (float total_n /. t_naive)
    (float total_n /. t_iter)
    speedup;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_extract.json\n%!"

(* ---------- parallel scaling (BENCH_parallel.json) ---------- *)

(* Sweep the job count over the four parallel stages. Determinism is
   asserted unconditionally — extraction and evaluation must be
   identical for every job count, training identical at jobs=1 — and
   a speedup floor is enforced only when the host actually has the
   cores to show one (a 1-core container can prove correctness, not
   scaling; the JSON records which case ran). *)
let parallel_bench () =
  header "Parallel scaling - jobs sweep over extraction, CRF, SGNS, eval";
  let cores = Domain.recommended_domain_count () in
  let max_jobs = Parallel.default_jobs () in
  let jobs_list =
    List.sort_uniq Int.compare [ 1; 2; 4; max_jobs ]
  in
  Printf.printf "host: %d recommended domains; sweeping jobs = %s\n%!" cores
    (String.concat ", " (List.map string_of_int jobs_list));
  let pools = Hashtbl.create 4 in
  let pool jobs =
    match Hashtbl.find_opt pools jobs with
    | Some p -> p
    | None ->
        let p = Parallel.create ~jobs () in
        Hashtbl.add pools jobs p;
        p
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n%!" name
    end
  in
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 240) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  (* Warm-up parse so first-touch costs don't pollute the jobs=1 row. *)
  ignore (lang.Pigeon.Lang.parse_tree (snd (List.hd train)));

  (* extraction: sources -> factor graphs *)
  let extract jobs =
    timed (fun () ->
        Pigeon.Task.graphs_of_sources_report ~pool:(pool jobs) ~repr ~lang
          ~policy:Pigeon.Graphs.Locals train)
  in
  let (base_graphs, base_report), t_extract1 = extract 1 in
  let extract_rows =
    List.map
      (fun jobs ->
        if jobs = 1 then (jobs, t_extract1)
        else begin
          let (gs, rep), t = extract jobs in
          check
            (Printf.sprintf "extraction jobs=%d differs from jobs=1" jobs)
            (gs = base_graphs && rep = base_report);
          (jobs, t)
        end)
      jobs_list
  in

  (* CRF training over the extracted graphs *)
  let test_graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals test
  in
  let cfg = crf_config 6 in
  let seq_model, t_crf_seq = timed (fun () -> Crf.Train.train ~config:cfg base_graphs) in
  let seq_preds = List.map (Crf.Train.predict seq_model) test_graphs in
  let crf_rows =
    List.map
      (fun jobs ->
        let m, t =
          timed (fun () ->
              Crf.Train.train ~pool:(pool jobs) ~config:cfg base_graphs)
        in
        let acc = Crf.Train.accuracy m test_graphs in
        if jobs = 1 then
          check "CRF jobs=1 training differs from sequential"
            (List.map (Crf.Train.predict m) test_graphs = seq_preds);
        (jobs, t, acc))
      jobs_list
  in

  (* SGNS training over path contexts *)
  let w2v_pairs =
    List.concat_map
      (fun (_, src) ->
        Pigeon.W2v_task.pairs_of_source ~lang
          ~mode:(Pigeon.W2v_task.Paths repr) src
        |> List.concat_map (fun (name, ctxs) ->
               List.map (fun c -> (name, c)) ctxs))
      train
  in
  let sgns_cfg =
    { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 5 }
  in
  let seq_sgns, t_sgns_seq =
    timed (fun () -> Word2vec.Sgns.train ~config:sgns_cfg w2v_pairs)
  in
  let sgns_rows =
    List.map
      (fun jobs ->
        let m, t =
          timed (fun () ->
              Word2vec.Sgns.train ~pool:(pool jobs)
                ~mode:Word2vec.Sgns.Deterministic ~config:sgns_cfg w2v_pairs)
        in
        if jobs = 1 then
          check "SGNS jobs=1 not bitwise-identical to sequential"
            (m.Word2vec.Sgns.word_vecs = seq_sgns.Word2vec.Sgns.word_vecs
            && m.Word2vec.Sgns.context_vecs
               = seq_sgns.Word2vec.Sgns.context_vecs);
        (jobs, t))
      jobs_list
  in
  let _, t_hogwild =
    timed (fun () ->
        Word2vec.Sgns.train ~pool:(pool max_jobs) ~mode:Word2vec.Sgns.Hogwild
          ~config:sgns_cfg w2v_pairs)
  in

  (* evaluation: batch MAP inference over the test graphs *)
  let eval jobs =
    timed (fun () ->
        Crf.Train.predict_batch ~pool:(pool jobs) seq_model test_graphs)
  in
  let base_eval, t_eval1 = eval 1 in
  check "eval jobs=1 differs from per-graph predict" (base_eval = seq_preds);
  let eval_rows =
    List.map
      (fun jobs ->
        if jobs = 1 then (jobs, t_eval1)
        else begin
          let preds, t = eval jobs in
          check
            (Printf.sprintf "eval jobs=%d differs from jobs=1" jobs)
            (preds = base_eval);
          (jobs, t)
        end)
      jobs_list
  in

  let speedup base t = base /. t in
  Printf.printf "%-12s %6s %10s %8s\n" "stage" "jobs" "seconds" "speedup";
  let print_stage name base rows =
    List.iter
      (fun (jobs, t) ->
        Printf.printf "%-12s %6d %10.3f %7.2fx\n%!" name jobs t
          (speedup base t))
      rows
  in
  print_stage "extraction" t_extract1 extract_rows;
  List.iter
    (fun (jobs, t, acc) ->
      Printf.printf "%-12s %6d %10.3f %7.2fx  (acc %.1f%%, seq %.3fs)\n%!"
        "crf-train" jobs t (speedup t_crf_seq t) (pct acc) t_crf_seq)
    crf_rows;
  print_stage "sgns-train" t_sgns_seq sgns_rows;
  Printf.printf "%-12s %6d %10.3f %7.2fx  (vs seq %.3fs)\n%!" "sgns-hogwild"
    max_jobs t_hogwild (speedup t_sgns_seq t_hogwild) t_sgns_seq;
  print_stage "eval" t_eval1 eval_rows;

  (* Speedup floor: only meaningful with real cores under the pool. *)
  let speedup_at rows jobs =
    match List.assoc_opt jobs rows with
    | Some t -> (match List.assoc_opt 1 rows with
        | Some t1 -> t1 /. t
        | None -> 1.)
    | None -> 1.
  in
  let gate_enforced = cores >= 4 in
  if gate_enforced then begin
    check
      (Printf.sprintf "extraction speedup at 4 jobs %.2fx < 2.5x"
         (speedup_at extract_rows 4))
      (speedup_at extract_rows 4 >= 2.5);
    check
      (Printf.sprintf "eval speedup at 4 jobs %.2fx < 2.5x"
         (speedup_at eval_rows 4))
      (speedup_at eval_rows 4 >= 2.5)
  end
  else
    Printf.printf
      "speedup floor not enforced: host has %d cores (< 4); determinism \
       checks ran unconditionally\n%!"
      cores;

  let oc = open_out "BENCH_parallel.json" in
  let row_json (jobs, t) base =
    Printf.sprintf "{\"jobs\": %d, \"seconds\": %.4f, \"speedup\": %.3f}" jobs
      t (base /. t)
  in
  let stage_json name base rows =
    Printf.sprintf "    \"%s\": [%s]" name
      (String.concat ", " (List.map (fun r -> row_json r base) rows))
  in
  Printf.fprintf oc "{\n  \"bench\": \"parallel-scaling\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n  \"cores\": %d,\n  \"jobs\": [%s],\n"
    !quick cores
    (String.concat ", " (List.map string_of_int jobs_list));
  Printf.fprintf oc "  \"speedup_floor_enforced\": %b,\n" gate_enforced;
  Printf.fprintf oc "  \"stages\": {\n%s,\n%s,\n%s,\n%s\n  },\n"
    (stage_json "extraction" t_extract1 extract_rows)
    (stage_json "crf_train" t_crf_seq
       (List.map (fun (j, t, _) -> (j, t)) crf_rows))
    (stage_json "sgns_train" t_sgns_seq sgns_rows)
    (stage_json "eval" t_eval1 eval_rows);
  Printf.fprintf oc
    "  \"sgns_hogwild\": {\"jobs\": %d, \"seconds\": %.4f, \"speedup\": \
     %.3f},\n"
    max_jobs t_hogwild (t_sgns_seq /. t_hogwild);
  Printf.fprintf oc "  \"determinism_failures\": %d\n}\n" !failures;
  close_out oc;
  Hashtbl.iter (fun _ p -> Parallel.shutdown p) pools;
  Printf.printf "wrote BENCH_parallel.json\n%!";
  if !failures > 0 then begin
    Printf.printf "parallel scaling: %d check failures\n%!" !failures;
    exit 1
  end
  else Printf.printf "parallel scaling: all determinism checks passed\n%!"

(* ---------- training kernels (BENCH_train.json) ---------- *)

(* The seed's CRF trainer, kept verbatim (sequential structured slice)
   as the measured baseline: Stdlib.Hashtbl weight tables and
   full-rescore ICM, exactly as they stood before the dense-kernel
   work. Graph/Candidates/Interner are unchanged by that work and are
   reused. The current trainer must reproduce this one's weights and
   predictions byte for byte — asserted below. *)
module Prev_crf = struct
  (* The seed's per-model string interner, pinned here now that the
     engine shares a guarded [Crf.Symbols] table instead. *)
  module Interner = struct
    type t = {
      tbl : (string, int) Hashtbl.t;
      mutable rev : string array;
      mutable n : int;
    }

    let create () = { tbl = Hashtbl.create 256; rev = Array.make 256 ""; n = 0 }

    let intern t s =
      match Hashtbl.find_opt t.tbl s with
      | Some i -> i
      | None ->
          let i = t.n in
          if i >= Array.length t.rev then begin
            let rev = Array.make (2 * Array.length t.rev) "" in
            Array.blit t.rev 0 rev 0 (Array.length t.rev);
            t.rev <- rev
          end;
          t.rev.(i) <- s;
          Hashtbl.add t.tbl s i;
          t.n <- i + 1;
          i

    let to_string t i = t.rev.(i)
    let size t = t.n
  end

  module Graph = Crf.Graph
  module Candidates = Crf.Candidates

  type egraph = {
    graph : Graph.t;
    unknown : int array;
    is_unknown : bool array;
    gold : int array;
    pw_a : int array;
    pw_b : int array;
    pw_rel : int array;
    pw_mult : float array;
    un_n : int array;
    un_rel : int array;
    un_mult : float array;
    touch_pw : int array array;
    touch_un : int array array;
  }

  let pw_key la rel lb = (la lsl 42) lor (rel lsl 18) lor lb
  let un_key l rel = (l lsl 24) lor rel

  type model = {
    labels : Interner.t;
    rels : Interner.t;
    pw : (int, float) Hashtbl.t;
    un : (int, float) Hashtbl.t;
    bias : (int, float) Hashtbl.t;
    pw_u : (int, float) Hashtbl.t;
    un_u : (int, float) Hashtbl.t;
    bias_u : (int, float) Hashtbl.t;
    mutable steps : int;
  }

  let create () =
    {
      labels = Interner.create ();
      rels = Interner.create ();
      pw = Hashtbl.create 65536;
      un = Hashtbl.create 16384;
      bias = Hashtbl.create 512;
      pw_u = Hashtbl.create 65536;
      un_u = Hashtbl.create 16384;
      bias_u = Hashtbl.create 512;
      steps = 0;
    }

  let get tbl k = match Hashtbl.find_opt tbl k with Some v -> v | None -> 0.

  let add tbl k d =
    if d <> 0. then
      match Hashtbl.find_opt tbl k with
      | Some v -> Hashtbl.replace tbl k (v +. d)
      | None -> Hashtbl.add tbl k d

  let encode m (g : Graph.t) =
    let n = Array.length g.Graph.nodes in
    let gold =
      Array.map
        (fun (nd : Graph.node) -> Interner.intern m.labels nd.Graph.gold)
        g.Graph.nodes
    in
    let is_unknown =
      Array.map
        (fun (nd : Graph.node) -> nd.Graph.kind = `Unknown)
        g.Graph.nodes
    in
    let unknown = Array.of_list (Graph.unknown_ids g) in
    let pw = ref [] and un = ref [] in
    List.iter
      (fun f ->
        match f with
        | Graph.Pairwise { a; b; rel; mult } ->
            pw := (a, b, Interner.intern m.rels rel, float_of_int mult) :: !pw
        | Graph.Unary { n = i; rel; mult } ->
            un := (i, Interner.intern m.rels rel, float_of_int mult) :: !un)
      g.Graph.factors;
    let pw = Array.of_list (List.rev !pw)
    and un = Array.of_list (List.rev !un) in
    let pw_a = Array.map (fun (a, _, _, _) -> a) pw in
    let pw_b = Array.map (fun (_, b, _, _) -> b) pw in
    let pw_rel = Array.map (fun (_, _, r, _) -> r) pw in
    let pw_mult = Array.map (fun (_, _, _, m) -> m) pw in
    let un_n = Array.map (fun (i, _, _) -> i) un in
    let un_rel = Array.map (fun (_, r, _) -> r) un in
    let un_mult = Array.map (fun (_, _, m) -> m) un in
    let touch_pw_l = Array.make n [] and touch_un_l = Array.make n [] in
    Array.iteri
      (fun fi a ->
        touch_pw_l.(a) <- fi :: touch_pw_l.(a);
        let b = pw_b.(fi) in
        if b <> a then touch_pw_l.(b) <- fi :: touch_pw_l.(b))
      pw_a;
    Array.iteri (fun fi i -> touch_un_l.(i) <- fi :: touch_un_l.(i)) un_n;
    {
      graph = g;
      unknown;
      is_unknown;
      gold;
      pw_a;
      pw_b;
      pw_rel;
      pw_mult;
      un_n;
      un_rel;
      un_mult;
      touch_pw = Array.map Array.of_list touch_pw_l;
      touch_un = Array.map Array.of_list touch_un_l;
    }

  type config = {
    max_candidates : int;
    max_passes : int;
    seed : int;
    iterations : int;
    averaged : bool;
    init_scale : float;
    init_min_count : int;
  }

  let node_score m eg n assignment l =
    let s = ref (get m.bias l) in
    Array.iter
      (fun fi ->
        let a = eg.pw_a.(fi) and b = eg.pw_b.(fi) in
        let la = if a = n then l else assignment.(a) in
        let lb = if b = n then l else assignment.(b) in
        s := !s +. (eg.pw_mult.(fi) *. get m.pw (pw_key la eg.pw_rel.(fi) lb)))
      eg.touch_pw.(n);
    Array.iter
      (fun fi ->
        s := !s +. (eg.un_mult.(fi) *. get m.un (un_key l eg.un_rel.(fi))))
      eg.touch_un.(n);
    !s

  let shuffle rng arr =
    let n = Array.length arr in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done

  let candidate_ids cfg cands m eg ~force_gold =
    let touching = Graph.touching eg.graph in
    Array.map
      (fun n ->
        let cs =
          Candidates.for_node cands eg.graph touching.(n) n
            ~max:cfg.max_candidates
        in
        let ids = List.map (Interner.intern m.labels) cs in
        let ids =
          if force_gold && not (List.mem eg.gold.(n) ids) then
            ids @ [ eg.gold.(n) ]
          else ids
        in
        Array.of_list ids)
      eg.unknown

  let map_assignment ~cand cfg cands m eg ~seed =
    let rng = Random.State.make [| seed |] in
    let default =
      match Candidates.global_top cands 1 with
      | [ l ] -> Interner.intern m.labels l
      | _ -> Interner.intern m.labels "?"
    in
    let assignment =
      Array.mapi (fun i g -> if eg.is_unknown.(i) then default else g) eg.gold
    in
    Array.iteri
      (fun i n ->
        if Array.length cand.(i) > 0 then assignment.(n) <- cand.(i).(0))
      eg.unknown;
    let best i n =
      let cs = cand.(i) in
      if Array.length cs = 0 then assignment.(n)
      else begin
        let best = ref assignment.(n) and best_score = ref neg_infinity in
        Array.iter
          (fun l ->
            let s = node_score m eg n assignment l in
            if s > !best_score then begin
              best_score := s;
              best := l
            end)
          cs;
        !best
      end
    in
    Array.iteri (fun i n -> assignment.(n) <- best i n) eg.unknown;
    let order = Array.init (Array.length eg.unknown) Fun.id in
    let changed = ref true and passes = ref 0 in
    while !changed && !passes < cfg.max_passes do
      changed := false;
      incr passes;
      shuffle rng order;
      Array.iter
        (fun i ->
          let n = eg.unknown.(i) in
          let l = best i n in
          if l <> assignment.(n) then begin
            assignment.(n) <- l;
            changed := true
          end)
        order
    done;
    assignment

  let update wr eg ~gold ~pred =
    let t = float_of_int wr.steps in
    let upd_pw k d =
      add wr.pw k d;
      add wr.pw_u k (t *. d)
    in
    let upd_un k d =
      add wr.un k d;
      add wr.un_u k (t *. d)
    in
    let upd_bias k d =
      add wr.bias k d;
      add wr.bias_u k (t *. d)
    in
    Array.iteri
      (fun fi a ->
        let b = eg.pw_b.(fi) in
        if eg.is_unknown.(a) || eg.is_unknown.(b) then begin
          let r = eg.pw_rel.(fi) and mult = eg.pw_mult.(fi) in
          let kg = pw_key gold.(a) r gold.(b)
          and kp = pw_key pred.(a) r pred.(b) in
          if kg <> kp then begin
            upd_pw kg mult;
            upd_pw kp (-.mult)
          end
        end)
      eg.pw_a;
    Array.iteri
      (fun fi i ->
        if eg.is_unknown.(i) then begin
          let r = eg.un_rel.(fi) and mult = eg.un_mult.(fi) in
          if gold.(i) <> pred.(i) then begin
            upd_un (un_key gold.(i) r) mult;
            upd_un (un_key pred.(i) r) (-.mult)
          end
        end)
      eg.un_n;
    Array.iter
      (fun n ->
        if gold.(n) <> pred.(n) then begin
          upd_bias gold.(n) 1.;
          upd_bias pred.(n) (-1.)
        end)
      eg.unknown

  let finalize_average m =
    if m.steps > 0 then begin
      let t = float_of_int m.steps in
      Hashtbl.iter (fun k u -> add m.pw k (-.u /. t)) m.pw_u;
      Hashtbl.iter (fun k u -> add m.un k (-.u /. t)) m.un_u;
      Hashtbl.iter (fun k u -> add m.bias k (-.u /. t)) m.bias_u
    end

  let bump_count tbl k v =
    Hashtbl.replace tbl k
      (v +. Option.value (Hashtbl.find_opt tbl k) ~default:0.)

  (* Log_counts init (the Train default; the Naive_bayes branch of the
     original is dead here, so label_total = 1). *)
  let init_from_counts m egs ~scale ~min_count =
    let pw_c = Hashtbl.create 65536 in
    let un_c = Hashtbl.create 16384 in
    let bias_c = Hashtbl.create 512 in
    Array.iter
      (fun eg ->
        Array.iteri
          (fun fi a ->
            let b = eg.pw_b.(fi) in
            if eg.is_unknown.(a) || eg.is_unknown.(b) then
              bump_count pw_c
                (pw_key eg.gold.(a) eg.pw_rel.(fi) eg.gold.(b))
                eg.pw_mult.(fi))
          eg.pw_a;
        Array.iteri
          (fun fi i ->
            if eg.is_unknown.(i) then
              bump_count un_c
                (un_key eg.gold.(i) eg.un_rel.(fi))
                eg.un_mult.(fi))
          eg.un_n;
        Array.iter (fun n -> bump_count bias_c eg.gold.(n) 1.) eg.unknown)
      egs;
    let mc = float_of_int min_count in
    Hashtbl.iter (fun k c -> if c >= mc then add m.pw k (scale *. log (1. +. c))) pw_c;
    Hashtbl.iter (fun k c -> if c >= mc then add m.un k (scale *. log (1. +. c))) un_c;
    Hashtbl.iter (fun k c -> add m.bias k (scale *. log (1. +. c))) bias_c

  (* Sequential structured-perceptron training, the seed's main loop. *)
  let train cfg cands graphs =
    let m = create () in
    let egs = Array.of_list (List.map (encode m) graphs) in
    init_from_counts m egs ~scale:cfg.init_scale ~min_count:cfg.init_min_count;
    let rng = Random.State.make [| cfg.seed |] in
    let cand_cache =
      Array.map (fun eg -> candidate_ids cfg cands m eg ~force_gold:true) egs
    in
    ignore (Candidates.global_top cands 1);
    let n = Array.length egs in
    for it = 0 to cfg.iterations - 1 do
      let order = Array.init n Fun.id in
      shuffle rng order;
      Array.iter
        (fun gi ->
          let eg = egs.(gi) in
          m.steps <- m.steps + 1;
          let pred =
            map_assignment ~cand:cand_cache.(gi) cfg cands m eg
              ~seed:(cfg.seed + it)
          in
          if pred <> eg.gold then update m eg ~gold:eg.gold ~pred)
        order
    done;
    if cfg.averaged then finalize_average m;
    m

  let predict cfg cands m g =
    let eg = encode m g in
    let cand = candidate_ids cfg cands m eg ~force_gold:false in
    let assignment = map_assignment ~cand cfg cands m eg ~seed:cfg.seed in
    Array.map (Interner.to_string m.labels) assignment

  (* Interner contents + weight tables in sorted-key order, the same
     shape the new trainer's sorted dump is compared in. *)
  let sorted_tables m =
    let s tbl =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    ( List.init (Interner.size m.labels) (Interner.to_string m.labels),
      List.init (Interner.size m.rels) (Interner.to_string m.rels),
      s m.pw,
      s m.un,
      s m.bias )
end

(* PR 4's two dense kernels, old vs new on the same workload:

   - CRF: structured-perceptron training (the ICM-heavy trainer) under
     [Fast.Full_rescore] — the pre-PR inference loop, kept selectable —
     against [Fast.Incremental], the score-cache + dirty-worklist
     engine. The engines must be byte-identical (weights and
     predictions are checked here and golden-tested in
     test_kernels.ml), so the ratio is pure kernel speed.

   - SGNS: the kept nested-array [Sgns.Reference] trainer against the
     flat-matrix kernel with the sigmoid LUT.

   Full runs enforce a >=2x floor on both; --quick only checks
   equivalence. Timings are min-of-2. Results go to BENCH_train.json. *)
let train_bench () =
  header "Training kernels - incremental ICM and flat-matrix SGNS vs pre-PR";
  let timed f =
    let run () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r, t = run () in
    let _, t' = run () in
    (r, min t t')
  in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n%!" name
    end
  in

  (* CRF kernel *)
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 240) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals train
  in
  let test_graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals test
  in
  let tcfg =
    { (crf_config 6) with Crf.Train.trainer = Crf.Fast.Structured }
  in
  let inf = tcfg.Crf.Train.inference in
  let prev_cfg =
    {
      Prev_crf.max_candidates = inf.Crf.Inference.max_candidates;
      max_passes = inf.Crf.Inference.max_passes;
      seed = inf.Crf.Inference.seed;
      iterations = tcfg.Crf.Train.iterations;
      averaged = tcfg.Crf.Train.averaged;
      init_scale = Crf.Fast.default_config.Crf.Fast.init_scale;
      init_min_count = Crf.Fast.default_config.Crf.Fast.init_min_count;
    }
  in
  (* Both sides time the full trainer entry point, candidate-table
     build included. *)
  let (prev_cands, m_prev), t_crf_old =
    timed (fun () ->
        let cands = Crf.Candidates.build graphs in
        (cands, Prev_crf.train prev_cfg cands graphs))
  in
  let m_new, t_crf_new =
    timed (fun () -> Crf.Train.train ~config:tcfg graphs)
  in
  let m_full, t_crf_full =
    timed (fun () ->
        Crf.Train.train
          ~config:{ tcfg with Crf.Train.engine = Crf.Fast.Full_rescore }
          graphs)
  in
  let sorted_dump fast =
    let d = Crf.Fast.dump fast in
    let s l = List.sort compare l in
    ( d.Crf.Fast.d_labels,
      d.Crf.Fast.d_rels,
      s d.Crf.Fast.d_pw,
      s d.Crf.Fast.d_un,
      s d.Crf.Fast.d_bias )
  in
  let new_dump = sorted_dump m_new.Crf.Train.fast in
  let weights_ok =
    Prev_crf.sorted_tables m_prev = new_dump
    && sorted_dump m_full.Crf.Train.fast = new_dump
  in
  let preds_ok =
    let new_preds = List.map (Crf.Train.predict m_new) test_graphs in
    List.map (Prev_crf.predict prev_cfg prev_cands m_prev) test_graphs
    = new_preds
    && List.map (Crf.Train.predict m_full) test_graphs = new_preds
  in
  check "CRF kernels trained different weights" weights_ok;
  check "CRF kernels predict differently" preds_ok;
  let crf_speedup = t_crf_old /. t_crf_new in
  Printf.printf "%-24s %12s %12s %8s  %s\n" "kernel" "old(s)" "new(s)"
    "speedup" "identical";
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  %b\n%!" "crf-train" t_crf_old
    t_crf_new crf_speedup (weights_ok && preds_ok);
  Printf.printf "%-24s %12s %12.3f %7.2fx  (dense tables, full-rescore ICM)\n%!"
    "  crf-train interim" "-" t_crf_full (t_crf_old /. t_crf_full);

  (* SGNS kernel *)
  let w2v_pairs =
    List.concat_map
      (fun (_, src) ->
        Pigeon.W2v_task.pairs_of_source ~lang
          ~mode:(Pigeon.W2v_task.Paths repr) src
        |> List.concat_map (fun (name, ctxs) ->
               List.map (fun c -> (name, c)) ctxs))
      train
  in
  let sgns_cfg = Word2vec.Sgns.default_config in
  let m_sgns_new, t_sgns_new =
    timed (fun () -> Word2vec.Sgns.train ~config:sgns_cfg w2v_pairs)
  in
  let m_sgns_old, t_sgns_old =
    timed (fun () -> Word2vec.Sgns.Reference.train ~config:sgns_cfg w2v_pairs)
  in
  check "SGNS vocabularies differ"
    (Array.length m_sgns_new.Word2vec.Sgns.word_vecs
     = Array.length m_sgns_old.Word2vec.Sgns.word_vecs
    && Array.length m_sgns_new.Word2vec.Sgns.context_vecs
       = Array.length m_sgns_old.Word2vec.Sgns.context_vecs);
  let sgns_speedup = t_sgns_old /. t_sgns_new in
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  (pairs %d, dim %d, epochs %d)\n%!"
    "sgns-train" t_sgns_old t_sgns_new sgns_speedup (List.length w2v_pairs)
    sgns_cfg.Word2vec.Sgns.dim sgns_cfg.Word2vec.Sgns.epochs;

  (* Floor: full runs only — quick workloads are too small to time. *)
  let floor = 2.0 in
  let floor_enforced = not !quick in
  if floor_enforced then begin
    check
      (Printf.sprintf "crf-train speedup %.2fx < %.1fx" crf_speedup floor)
      (crf_speedup >= floor);
    check
      (Printf.sprintf "sgns-train speedup %.2fx < %.1fx" sgns_speedup floor)
      (sgns_speedup >= floor)
  end
  else Printf.printf "speedup floor not enforced (--quick)\n%!";

  let oc = open_out "BENCH_train.json" in
  Printf.fprintf oc "{\n  \"bench\": \"training-kernels\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc
    "  \"crf_train\": {\"trainer\": \"structured\", \"graphs\": %d, \
     \"iterations\": %d,\n\
    \                \"old_seconds\": %.4f, \"new_seconds\": %.4f, \
     \"speedup\": %.2f,\n\
    \                \"weights_identical\": %b, \"predictions_identical\": \
     %b},\n"
    (List.length graphs) 6 t_crf_old t_crf_new crf_speedup weights_ok preds_ok;
  Printf.fprintf oc
    "  \"sgns_train\": {\"pairs\": %d, \"dim\": %d, \"epochs\": %d,\n\
    \                 \"old_seconds\": %.4f, \"new_seconds\": %.4f, \
     \"speedup\": %.2f},\n"
    (List.length w2v_pairs) sgns_cfg.Word2vec.Sgns.dim
    sgns_cfg.Word2vec.Sgns.epochs t_sgns_old t_sgns_new sgns_speedup;
  Printf.fprintf oc "  \"speedup_floor\": %.1f,\n" floor;
  Printf.fprintf oc "  \"speedup_floor_enforced\": %b,\n" floor_enforced;
  Printf.fprintf oc "  \"failures\": %d\n}\n" !failures;
  close_out oc;
  Printf.printf "wrote BENCH_train.json\n%!";
  if !failures > 0 then begin
    Printf.printf "training kernels: %d check failures\n%!" !failures;
    exit 1
  end
  else Printf.printf "training kernels: all checks passed\n%!"

(* ---------- interned pipeline (BENCH_intern.json) ---------- *)

(* The seed's string-keyed candidate table, pinned as the measured
   baseline for the interning work: "\x1f"-concatenated pairwise keys,
   find-then-replace double lookups, string-keyed inner tables. One
   normalization: [sorted_global] gets the (count desc, label asc)
   total order the interned table uses — the seed's ranking was
   hash-order dependent on count ties, and the identity asserts below
   need a well-defined answer. *)
module Prev_cands = struct
  type counts = (string, int) Hashtbl.t

  type t = {
    unary : (string, counts) Hashtbl.t;
    pairwise : (string, counts) Hashtbl.t;
    global : counts;
    mutable sorted_global : string list;
  }

  let bump ?(by = 1) tbl key label =
    let inner =
      match Hashtbl.find_opt tbl key with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.add tbl key h;
          h
    in
    Hashtbl.replace inner label
      (by + Option.value (Hashtbl.find_opt inner label) ~default:0)

  let pw_key ~dir ~rel ~other = String.concat "\x1f" [ dir; rel; other ]

  let build graphs =
    let t =
      {
        unary = Hashtbl.create 1024;
        pairwise = Hashtbl.create 4096;
        global = Hashtbl.create 256;
        sorted_global = [];
      }
    in
    List.iter
      (fun (g : Crf.Graph.t) ->
        let gold = Crf.Graph.gold_assignment g in
        Array.iter
          (fun (n : Crf.Graph.node) ->
            if n.Crf.Graph.kind = `Unknown then
              Hashtbl.replace t.global n.Crf.Graph.gold
                (1
                + Option.value
                    (Hashtbl.find_opt t.global n.Crf.Graph.gold)
                    ~default:0))
          g.Crf.Graph.nodes;
        List.iter
          (fun f ->
            match f with
            | Crf.Graph.Unary { n; rel; mult } ->
                if g.Crf.Graph.nodes.(n).Crf.Graph.kind = `Unknown then
                  bump ~by:mult t.unary rel gold.(n)
            | Crf.Graph.Pairwise { a; b; rel; mult } ->
                if g.Crf.Graph.nodes.(a).Crf.Graph.kind = `Unknown then
                  bump ~by:mult t.pairwise
                    (pw_key ~dir:"L" ~rel ~other:gold.(b))
                    gold.(a);
                if g.Crf.Graph.nodes.(b).Crf.Graph.kind = `Unknown then
                  bump ~by:mult t.pairwise
                    (pw_key ~dir:"R" ~rel ~other:gold.(a))
                    gold.(b))
          g.Crf.Graph.factors)
      graphs;
    t

  let sorted_global t =
    if t.sorted_global = [] && Hashtbl.length t.global > 0 then begin
      let items = Hashtbl.fold (fun l c acc -> (l, c) :: acc) t.global [] in
      t.sorted_global <-
        List.map fst
          (List.sort
             (fun (la, a) (lb, b) ->
               let c = Int.compare b a in
               if c <> 0 then c else String.compare la lb)
             items)
    end;
    t.sorted_global

  let global_top t k =
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take k (sorted_global t)

  let for_node t (g : Crf.Graph.t) factors n ~max =
    let scores : counts = Hashtbl.create 16 in
    let merge inner =
      Hashtbl.iter
        (fun l c ->
          Hashtbl.replace scores l
            (c + Option.value (Hashtbl.find_opt scores l) ~default:0))
        inner
    in
    List.iter
      (fun f ->
        match f with
        | Crf.Graph.Unary { n = m; rel; _ } when m = n -> (
            match Hashtbl.find_opt t.unary rel with
            | Some inner -> merge inner
            | None -> ())
        | Crf.Graph.Pairwise { a; b; rel; _ } when a = n ->
            if g.Crf.Graph.nodes.(b).Crf.Graph.kind = `Known then
              Option.iter merge
                (Hashtbl.find_opt t.pairwise
                   (pw_key ~dir:"L" ~rel ~other:g.Crf.Graph.nodes.(b).Crf.Graph.gold))
        | Crf.Graph.Pairwise { a; b; rel; _ } when b = n ->
            if g.Crf.Graph.nodes.(a).Crf.Graph.kind = `Known then
              Option.iter merge
                (Hashtbl.find_opt t.pairwise
                   (pw_key ~dir:"R" ~rel ~other:g.Crf.Graph.nodes.(a).Crf.Graph.gold))
        | _ -> ())
      factors;
    let ranked =
      Hashtbl.fold (fun l c acc -> (l, c) :: acc) scores []
      |> List.sort (fun (la, a) (lb, b) ->
             let c = Int.compare b a in
             if c <> 0 then c else String.compare la lb)
      |> List.map fst
    in
    let seen = Hashtbl.create 16 in
    let out = ref [] and count = ref 0 in
    let push l =
      if !count < max && not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        out := l :: !out;
        incr count
      end
    in
    List.iter push ranked;
    List.iter push (global_top t max);
    List.rev !out
end

(* The seed's per-node candidate interning over the string table. *)
let prev_candidate_ids (cfg : Prev_crf.config) cands (m : Prev_crf.model)
    (eg : Prev_crf.egraph) ~force_gold =
  let touching = Crf.Graph.touching eg.Prev_crf.graph in
  Array.map
    (fun n ->
      let cs =
        Prev_cands.for_node cands eg.Prev_crf.graph touching.(n) n
          ~max:cfg.Prev_crf.max_candidates
      in
      let ids = List.map (Prev_crf.Interner.intern m.Prev_crf.labels) cs in
      let ids =
        if force_gold && not (List.mem eg.Prev_crf.gold.(n) ids) then
          ids @ [ eg.Prev_crf.gold.(n) ]
        else ids
      in
      Array.of_list ids)
    eg.Prev_crf.unknown

(* The interning PR, old vs new on the same workload:

   - encode: graphs -> train-ready state (candidate table, encoded
     factor arrays, per-slot candidate id arrays). Old is the pinned
     string pipeline: string-keyed candidate counts, per-model Hashtbl
     interner hashing every gold label and relation occurrence, and
     candidate lists interned string-by-string per node. New is the
     shared guarded symbol table + int-keyed counts. The decoded
     candidate sets must be identical.

   - model save+load: the v2 text format (kept writer + loader)
     against the v3 binary sections, for both the CRF and the SGNS
     model. v3 must round-trip byte-identically and both loads must
     predict byte-identically to the in-memory model.

   - heap: live words held by the train-ready state, old vs new, plus
     the process peak (top_heap_words).

   Full runs enforce >=1.5x on encode and >=2x on both model loads;
   --quick only checks the identities. Results go to BENCH_intern.json. *)
let intern_bench () =
  header "Interned pipeline - shared symbol table and binary v3 models vs pre-PR";
  let timed f =
    let run () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let r, t = run () in
    let _, t' = run () in
    (r, min t t')
  in
  let failures = ref 0 in
  let check name ok =
    if not ok then begin
      incr failures;
      Printf.printf "  FAIL: %s\n%!" name
    end
  in

  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 240) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals train
  in
  let test_graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals test
  in

  (* Interning is corpus-order deterministic: a second pass over the
     same sources must reproduce graphs, symbol tables and counts. *)
  let graphs2 =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals train
  in
  check "graph construction not deterministic" (graphs = graphs2);
  let c1 = Crf.Candidates.build graphs in
  let c2 = Crf.Candidates.build graphs2 in
  check "candidate interning not corpus-order deterministic"
    (Crf.Candidates.dump_ids c1 = Crf.Candidates.dump_ids c2
    && Crf.Symbols.snapshot (Crf.Candidates.symbols c1)
       = Crf.Symbols.snapshot (Crf.Candidates.symbols c2));

  (* Encode to train-ready state. *)
  let tcfg = crf_config 6 in
  let inf = tcfg.Crf.Train.inference in
  let prev_cfg =
    {
      Prev_crf.max_candidates = inf.Crf.Inference.max_candidates;
      max_passes = inf.Crf.Inference.max_passes;
      seed = inf.Crf.Inference.seed;
      iterations = tcfg.Crf.Train.iterations;
      averaged = tcfg.Crf.Train.averaged;
      init_scale = Crf.Fast.default_config.Crf.Fast.init_scale;
      init_min_count = Crf.Fast.default_config.Crf.Fast.init_min_count;
    }
  in
  let fcfg =
    {
      Crf.Fast.default_config with
      Crf.Fast.max_candidates = inf.Crf.Inference.max_candidates;
      max_passes = inf.Crf.Inference.max_passes;
      seed = inf.Crf.Inference.seed;
    }
  in
  let encode_old () =
    let cands = Prev_cands.build graphs in
    let m = Prev_crf.create () in
    let egs = List.map (Prev_crf.encode m) graphs in
    let cand =
      List.map (fun eg -> prev_candidate_ids prev_cfg cands m eg ~force_gold:true) egs
    in
    (cands, m, egs, cand)
  in
  let encode_new () =
    let cands = Crf.Candidates.build graphs in
    let m = Crf.Fast.create ~symbols:(Crf.Candidates.symbols cands) () in
    let egs = List.map (Crf.Fast.encode m) graphs in
    let cand =
      List.map
        (fun eg -> Crf.Fast.candidate_ids fcfg cands m eg ~force_gold:true)
        egs
    in
    (cands, m, egs, cand)
  in
  let (o_cands, o_m, o_egs, o_cand), t_enc_old = timed encode_old in
  let (n_cands, n_m, n_egs, n_cand), t_enc_new = timed encode_new in
  let syms = Crf.Fast.symbols n_m in
  check "candidate sets differ from the string pipeline"
    (List.map
       (Array.map (Array.map (Prev_crf.Interner.to_string o_m.Prev_crf.labels)))
       o_cand
    = List.map (Array.map (Array.map (Crf.Symbols.label_string syms))) n_cand);
  check "global label ranking differs from the string pipeline"
    (Prev_cands.global_top o_cands 10 = Crf.Candidates.global_top n_cands 10);
  check "unknown slots differ from the string pipeline"
    (List.map (fun (eg : Prev_crf.egraph) -> eg.Prev_crf.unknown) o_egs
    = List.map Crf.Fast.unknown_nodes n_egs);
  let enc_speedup = t_enc_old /. t_enc_new in
  Printf.printf "%-24s %12s %12s %8s  %s\n" "stage" "old(s)" "new(s)" "speedup"
    "identical";
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  %b  (%d graphs)\n%!" "encode"
    t_enc_old t_enc_new enc_speedup (!failures = 0) (List.length graphs);

  (* Model save+load: v2 text vs v3 binary. *)
  let model = Crf.Train.train ~config:tcfg graphs in

  (* jobs=1 training is byte-identical run to run (the symbol tables it
     interns are corpus-order deterministic). Dumps are compared before
     any prediction: predicting interns unseen test-set strings into
     the model's table, as the seed's interner did. *)
  let model2 = Crf.Train.train ~config:tcfg graphs2 in
  let sorted_dump fast =
    let d = Crf.Fast.dump fast in
    let s l = List.sort compare l in
    ( d.Crf.Fast.d_labels,
      d.Crf.Fast.d_rels,
      s d.Crf.Fast.d_pw,
      s d.Crf.Fast.d_un,
      s d.Crf.Fast.d_bias )
  in
  check "jobs=1 training weights not byte-identical across runs"
    (sorted_dump model.Crf.Train.fast = sorted_dump model2.Crf.Train.fast);
  let preds m = List.map (Crf.Train.predict m) test_graphs in
  let p0 = preds model in
  check "jobs=1 predictions not byte-identical across runs" (preds model2 = p0);

  let v2_path = "bench_model_v2.tmp" and v3_path = "bench_model_v3.tmp" in
  let (), t_save_v2 =
    timed (fun () ->
        let oc = open_out_bin v2_path in
        Crf.Serialize.to_channel_v2 model oc;
        close_out oc)
  in
  let (), t_save_v3 = timed (fun () -> Crf.Serialize.save model v3_path) in
  let m_v2, t_load_v2 = timed (fun () -> Crf.Serialize.load_exn v2_path) in
  let m_v3, t_load_v3 = timed (fun () -> Crf.Serialize.load_exn v3_path) in
  let bytes_v3 = Crf.Serialize.to_string model in
  check "crf v3 round-trip not byte-identical"
    (String.equal bytes_v3 (Crf.Serialize.to_string m_v3));
  check "crf v2-loaded model predicts differently" (preds m_v2 = p0);
  check "crf v3-loaded model predicts differently" (preds m_v3 = p0);
  let file_size path = (Unix.stat path).Unix.st_size in
  let crf_size_v2 = file_size v2_path and crf_size_v3 = file_size v3_path in
  let crf_load_speedup = t_load_v2 /. t_load_v3 in
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  (v2 %d B, v3 %d B)\n%!" "crf-save"
    t_save_v2 t_save_v3 (t_save_v2 /. t_save_v3) crf_size_v2 crf_size_v3;
  Printf.printf "%-24s %12.3f %12.3f %7.2fx\n%!" "crf-load" t_load_v2 t_load_v3
    crf_load_speedup;

  let w2v_pairs =
    List.concat_map
      (fun (_, src) ->
        Pigeon.W2v_task.pairs_of_source ~lang
          ~mode:(Pigeon.W2v_task.Paths repr) src
        |> List.concat_map (fun (name, ctxs) ->
               List.map (fun c -> (name, c)) ctxs))
      train
  in
  let sgns_cfg = Word2vec.Sgns.default_config in
  let w2v = Word2vec.Sgns.train ~config:sgns_cfg w2v_pairs in
  let w2_path = "bench_w2v_v2.tmp" and w3_path = "bench_w2v_v3.tmp" in
  let (), t_wsave_v2 =
    timed (fun () ->
        let oc = open_out_bin w2_path in
        Word2vec.Serialize.to_channel_v2 w2v oc;
        close_out oc)
  in
  let (), t_wsave_v3 = timed (fun () -> Word2vec.Serialize.save w2v w3_path) in
  let w_v2, t_wload_v2 = timed (fun () -> Word2vec.Serialize.load_exn w2_path) in
  let w_v3, t_wload_v3 = timed (fun () -> Word2vec.Serialize.load_exn w3_path) in
  check "w2v v3 round-trip not byte-identical"
    (String.equal (Word2vec.Serialize.to_string w2v)
       (Word2vec.Serialize.to_string w_v3));
  (* v2 text rounds vectors to 9 significant digits; only v3 carries
     the exact bits. *)
  let near a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun va vb ->
           Array.length va = Array.length vb
           && Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-6) va vb)
         a b
  in
  check "w2v v2-loaded vectors differ beyond text precision"
    (near w_v2.Word2vec.Sgns.word_vecs w2v.Word2vec.Sgns.word_vecs
    && near w_v2.Word2vec.Sgns.context_vecs w2v.Word2vec.Sgns.context_vecs);
  check "w2v v3-loaded vectors differ"
    (w_v3.Word2vec.Sgns.word_vecs = w2v.Word2vec.Sgns.word_vecs
    && w_v3.Word2vec.Sgns.context_vecs = w2v.Word2vec.Sgns.context_vecs);
  let w2v_size_v2 = file_size w2_path and w2v_size_v3 = file_size w3_path in
  let w2v_load_speedup = t_wload_v2 /. t_wload_v3 in
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  (v2 %d B, v3 %d B)\n%!" "w2v-save"
    t_wsave_v2 t_wsave_v3 (t_wsave_v2 /. t_wsave_v3) w2v_size_v2 w2v_size_v3;
  Printf.printf "%-24s %12.3f %12.3f %7.2fx\n%!" "w2v-load" t_wload_v2
    t_wload_v3 w2v_load_speedup;

  (* Zero-copy mmap loaders, against the same v4 files: map-load walks
     only headers and weight keys and wires the float runs to Bigarray
     views over the mapped file, so load time stops scaling with the
     weight payload. The deferred checksum pass lands on the first
     inference (first-batch latency below); extra mapped models cost
     page-cache, not private heap (RSS deltas below). *)
  let map_load_crf path =
    match Crf.Serialize.load_mapped path with
    | Ok r -> r
    | Error d ->
        check
          (Printf.sprintf "crf map-load failed: %s" (Lexkit.Diag.to_string d))
          false;
        (model, Lexkit.Storage.heap)
  in
  let map_load_w2v path =
    match Word2vec.Serialize.load_mapped path with
    | Ok r -> r
    | Error d ->
        check
          (Printf.sprintf "w2v map-load failed: %s" (Lexkit.Diag.to_string d))
          false;
        (Word2vec.Sgns.view_of w2v, Lexkit.Storage.heap)
  in
  let (m_mapped, crf_map_storage), t_map_crf =
    timed (fun () -> map_load_crf v3_path)
  in
  check "crf map-load downgraded to a heap copy"
    (Lexkit.Storage.mapped_bytes crf_map_storage > 0);
  let crf_map_speedup = t_load_v3 /. t_map_crf in
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  (copy-load vs map-load)\n%!"
    "crf-map-load" t_load_v3 t_map_crf crf_map_speedup;
  (* First batch after a map-load pays the lazy checksum verification
     plus the page faults — the cost the O(header) load deferred.
     Single run by construction: only the first batch is "first". *)
  let t0_first = Unix.gettimeofday () in
  let p_mapped = preds m_mapped in
  let t_first_batch = Unix.gettimeofday () -. t0_first in
  check "mapped crf model predicts differently" (p_mapped = p0);
  Printf.printf "%-24s %12.3f %12s  (deferred checksums + faults)\n%!"
    "map-first-batch" t_first_batch "";
  let (w2v_view, w2v_map_storage), t_map_w2v =
    timed (fun () -> map_load_w2v w3_path)
  in
  check "w2v map-load downgraded to a heap copy"
    (Lexkit.Storage.mapped_bytes w2v_map_storage > 0);
  check "w2v mapped view differs from the trained model"
    (String.equal
       (Word2vec.Serialize.to_string (Word2vec.Sgns.heap_of_view w2v_view))
       (Word2vec.Serialize.to_string w2v));
  let w2v_map_speedup = t_wload_v3 /. t_map_w2v in
  Printf.printf "%-24s %12.3f %12.3f %7.2fx  (copy-load vs map-load)\n%!"
    "w2v-map-load" t_wload_v3 t_map_w2v w2v_map_speedup;
  (* Resident-set delta for holding 1 vs 3 mapped models open at once;
     mappings of one file share pages, so the marginal model should
     cost far less than its file size. Reported, not asserted — RSS is
     GC- and kernel-noisy. *)
  let rss_kb () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> -1
    | ic -> (
        let rec go () =
          match input_line ic with
          | exception End_of_file ->
              close_in ic;
              -1
          | line ->
              if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then begin
                close_in ic;
                try
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d"
                    (fun k -> k)
                with Scanf.Scan_failure _ | Failure _ -> -1
              end
              else go ()
        in
        go ())
  in
  Gc.compact ();
  let rss0 = rss_kb () in
  let one_model = Sys.opaque_identity (map_load_crf v3_path) in
  let rss1 = rss_kb () in
  let more_models =
    Sys.opaque_identity [ map_load_crf v3_path; map_load_crf v3_path ]
  in
  let rss3 = rss_kb () in
  let rss_delta_1 = if rss0 < 0 || rss1 < 0 then -1 else rss1 - rss0 in
  let rss_delta_3 = if rss0 < 0 || rss3 < 0 then -1 else rss3 - rss0 in
  ignore (Sys.opaque_identity one_model);
  ignore (Sys.opaque_identity more_models);
  Printf.printf "%-24s %+11dkB %+11dkB  (RSS delta: 1 vs 3 mapped models)\n%!"
    "map-resident" rss_delta_1 rss_delta_3;
  List.iter Sys.remove [ v2_path; v3_path; w2_path; w3_path ];

  (* Heap: live words held by the train-ready state — the counts, the
     vocabulary (interner / symbol table), the encoded factor arrays
     and the candidate id arrays. The models' weight tables are empty
     at this point and presized differently (Itbl arrays vs Hashtbl
     buckets), so both are dropped to keep the comparison about the
     representation. The state must be local to the measuring call so
     the old pipeline's tables are dead before the new one is built. *)
  let live_words () =
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let measure build =
    let base = live_words () in
    let state = Sys.opaque_identity (build ()) in
    let live = live_words () - base in
    ignore (Sys.opaque_identity state);
    live
  in
  let live_old =
    measure (fun () ->
        let cands, m, egs, cand = encode_old () in
        (cands, m.Prev_crf.labels, m.Prev_crf.rels, egs, cand))
  in
  let live_new =
    measure (fun () ->
        let cands, _m, egs, cand = encode_new () in
        (cands, egs, cand))
  in
  let peak = (Gc.stat ()).Gc.top_heap_words in
  Printf.printf "%-24s %12d %12d %7.2fx  (live heap words)\n%!" "encoded-state"
    live_old live_new
    (float_of_int live_old /. float_of_int (max 1 live_new));
  Printf.printf "peak heap: %d words (%.1f MB)\n%!" peak
    (float_of_int (peak * Sys.word_size / 8) /. 1048576.);

  (* Floors: full runs only — quick workloads are too small to time.
     Quick runs still surface any miss as a visible warning line. *)
  let encode_floor = 1.5 and load_floor = 2.0 and map_floor = 5.0 in
  let floor_enforced = not !quick in
  let floor_check name speedup floor =
    if floor_enforced then
      check
        (Printf.sprintf "%s speedup %.2fx < %.1fx" name speedup floor)
        (speedup >= floor)
    else if speedup < floor then
      Printf.printf "  warn: %s speedup %.2fx below-floor %.1fx (not enforced)\n%!"
        name speedup floor
  in
  floor_check "encode" enc_speedup encode_floor;
  floor_check "crf model-load" crf_load_speedup load_floor;
  floor_check "w2v model-load" w2v_load_speedup load_floor;
  floor_check "crf map-load" crf_map_speedup map_floor;
  floor_check "w2v map-load" w2v_map_speedup map_floor;
  if not floor_enforced then
    Printf.printf "speedup floors not enforced (--quick)\n%!";

  let oc = open_out "BENCH_intern.json" in
  Printf.fprintf oc "{\n  \"bench\": \"interned-pipeline\",\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc
    "  \"encode\": {\"graphs\": %d, \"old_seconds\": %.4f, \"new_seconds\": \
     %.4f, \"speedup\": %.2f},\n"
    (List.length graphs) t_enc_old t_enc_new enc_speedup;
  Printf.fprintf oc
    "  \"crf_model\": {\"v2_bytes\": %d, \"v3_bytes\": %d,\n\
    \                \"save_v2_seconds\": %.4f, \"save_v3_seconds\": %.4f,\n\
    \                \"load_v2_seconds\": %.4f, \"load_v3_seconds\": %.4f, \
     \"load_speedup\": %.2f},\n"
    crf_size_v2 crf_size_v3 t_save_v2 t_save_v3 t_load_v2 t_load_v3
    crf_load_speedup;
  Printf.fprintf oc
    "  \"w2v_model\": {\"v2_bytes\": %d, \"v3_bytes\": %d,\n\
    \                \"save_v2_seconds\": %.4f, \"save_v3_seconds\": %.4f,\n\
    \                \"load_v2_seconds\": %.4f, \"load_v3_seconds\": %.4f, \
     \"load_speedup\": %.2f},\n"
    w2v_size_v2 w2v_size_v3 t_wsave_v2 t_wsave_v3 t_wload_v2 t_wload_v3
    w2v_load_speedup;
  Printf.fprintf oc
    "  \"heap\": {\"old_live_words\": %d, \"new_live_words\": %d, \
     \"peak_heap_words\": %d},\n"
    live_old live_new peak;
  Printf.fprintf oc
    "  \"mmap\": {\"crf_copy_seconds\": %.4f, \"crf_map_seconds\": %.4f, \
     \"crf_map_speedup\": %.2f,\n\
    \           \"w2v_copy_seconds\": %.4f, \"w2v_map_seconds\": %.4f, \
     \"w2v_map_speedup\": %.2f,\n\
    \           \"first_batch_seconds\": %.4f,\n\
    \           \"rss_delta_1_model_kb\": %d, \"rss_delta_3_models_kb\": %d, \
     \"map_floor\": %.1f},\n"
    t_load_v3 t_map_crf crf_map_speedup t_wload_v3 t_map_w2v w2v_map_speedup
    t_first_batch rss_delta_1 rss_delta_3 map_floor;
  Printf.fprintf oc "  \"encode_floor\": %.1f,\n" encode_floor;
  Printf.fprintf oc "  \"load_floor\": %.1f,\n" load_floor;
  Printf.fprintf oc "  \"floors_enforced\": %b,\n" floor_enforced;
  Printf.fprintf oc "  \"failures\": %d\n}\n" !failures;
  close_out oc;
  Printf.printf "wrote BENCH_intern.json\n%!";
  if !failures > 0 then begin
    Printf.printf "interned pipeline: %d check failures\n%!" !failures;
    exit 1
  end
  else Printf.printf "interned pipeline: all checks passed\n%!"

(* ---------- bechamel micro-benchmarks ---------- *)

let micro () =
  header "Micro-benchmarks (bechamel) - core pipeline operations";
  let lang = Pigeon.Lang.javascript in
  let src =
    snd
      (List.hd
         (Corpus.Gen.generate_sources
            { Corpus.Gen.default with Corpus.Gen.n_files = 1; seed = 3 }
            Corpus.Render.Js))
  in
  let tree = lang.Pigeon.Lang.parse_tree src in
  let idx = Ast.Index.build tree in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graph =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  let model = Crf.Train.train ~config:(crf_config 2) [ graph ] in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"pigeon"
      [
        Test.make ~name:"parse+lower"
          (Staged.stage (fun () -> ignore (lang.Pigeon.Lang.parse_tree src)));
        Test.make ~name:"index-build"
          (Staged.stage (fun () -> ignore (Ast.Index.build tree)));
        Test.make ~name:"path-extraction-7-3"
          (Staged.stage (fun () ->
               ignore (Astpath.Extract.leaf_pairs idx lang.Pigeon.Lang.tuned)));
        Test.make ~name:"path-extract-iter-7-3"
          (Staged.stage (fun () ->
               let n = ref 0 in
               Astpath.Extract.iter idx lang.Pigeon.Lang.tuned (fun _ ->
                   incr n)));
        Test.make ~name:"graph-build"
          (Staged.stage (fun () ->
               ignore
                 (Pigeon.Graphs.build repr
                    ~def_labels:lang.Pigeon.Lang.def_labels
                    ~policy:Pigeon.Graphs.Locals tree)));
        Test.make ~name:"map-inference"
          (Staged.stage (fun () -> ignore (Crf.Train.predict model graph)));
      ]
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg instances tests
  in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock (benchmark ())
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %14.0f ns/run\n%!" name est
      | _ -> Printf.printf "%-32s (no estimate)\n%!" name)
    results;
  extract_bench ()

(* ---------- serve daemon throughput (BENCH_serve.json) ---------- *)

(* N concurrent clients hammer a live daemon over a Unix socket with a
   mixed well-formed/hostile request stream, measuring sustained
   requests/sec and per-request latency (p50/p99). Hostile requests
   must come back as structured errors without slowing the daemon
   down — the isolation story under load, not just in unit tests.
   Floors (full runs only): rps >= 30 and p99 <= 500 ms with 4
   clients. Results go to BENCH_serve.json. *)
let serve_bench () =
  header "SERVE: daemon throughput and latency under concurrent clients";
  let lang = Pigeon.Lang.javascript in
  let train, test = corpus_for lang ~n:(scaled 160) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
      train
  in
  let model = Crf.Train.train ~config:(crf_config 4) graphs in
  let engine = Serve.Engine.create ~model () in
  let pool = Parallel.create () in
  let sock = Filename.temp_file "pigeon-bench" ".sock" in
  Sys.remove sock;
  let cfg =
    { Serve.Server.default_config with Serve.Server.unix_socket = Some sock }
  in
  let server = Serve.Server.start ~pool engine cfg in
  let sources =
    match List.map snd test with
    | [] -> [| "var fallback = 1; var other = fallback + 1;\n" |]
    | xs -> Array.of_list xs
  in
  let predict_line ~id code =
    Serve.Json.to_string
      (Serve.Json.Obj
         [ ("op", Serve.Json.Str "predict");
           ("id", Serve.Json.Num (float_of_int id));
           ("lang", Serve.Json.Str lang.Pigeon.Lang.name);
           ("code", Serve.Json.Str code) ])
  in
  let hostile_code =
    "function f(){ return " ^ String.make 4_000 '(' ^ "1"
    ^ String.make 4_000 ')' ^ "; }\n"
  in
  (* byte-identity spot check before the timed burst: the daemon reply
     equals Engine.handle's for the same request bytes *)
  (let c = Serve.Client.connect_unix sock in
   let line = predict_line ~id:0 sources.(0) in
   (match Serve.Client.request c line with
   | Some reply ->
       let direct =
         match Serve.Protocol.request_of_line line with
         | Ok r -> Serve.Engine.handle engine r
         | Error _ -> assert false
       in
       if not (String.equal reply direct) then
         failwith "serve bench: daemon reply differs from Engine.handle"
   | None -> failwith "serve bench: daemon closed the spot-check connection");
   Serve.Client.close c);
  let n_clients = 4 in
  let per_client = if !quick then 15 else 60 in
  let lat = Array.make (n_clients * per_client) 0.0 in
  let oks = Array.make n_clients 0 and errs = Array.make n_clients 0 in
  let n_hostile = ref 0 in
  let client k =
    let c = Serve.Client.connect_unix sock in
    for i = 0 to per_client - 1 do
      let id = (k * per_client) + i in
      let hostile = id mod 7 = 3 in
      let line =
        if hostile then predict_line ~id hostile_code
        else predict_line ~id sources.(id mod Array.length sources)
      in
      let t0 = Unix.gettimeofday () in
      match Serve.Client.request c line with
      | Some reply ->
          lat.(id) <- Unix.gettimeofday () -. t0;
          if Serve.Protocol.reply_ok reply then oks.(k) <- oks.(k) + 1
          else errs.(k) <- errs.(k) + 1;
          if hostile && Serve.Protocol.reply_ok reply then
            failwith "serve bench: hostile request accepted"
      | None -> failwith "serve bench: daemon dropped a client"
    done;
    Serve.Client.close c
  in
  List.iter
    (fun id -> if id mod 7 = 3 then incr n_hostile)
    (List.init (n_clients * per_client) Fun.id);
  let wall0 = Unix.gettimeofday () in
  let threads = List.init n_clients (fun k -> Thread.create client k) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. wall0 in
  let stats = Serve.Server.stats server in
  Serve.Server.request_stop server;
  Serve.Server.wait server;
  Parallel.shutdown pool;
  let total = n_clients * per_client in
  let ok_total = Array.fold_left ( + ) 0 oks
  and err_total = Array.fold_left ( + ) 0 errs in
  if err_total < !n_hostile then
    failwith "serve bench: some hostile requests did not error";
  if ok_total + err_total <> total then
    failwith "serve bench: lost replies";
  let rps = float_of_int total /. wall in
  Array.sort compare lat;
  let pctl p =
    lat.(min (total - 1) (int_of_float (p *. float_of_int total))) *. 1000.
  in
  let p50 = pctl 0.50 and p99 = pctl 0.99 in
  Printf.printf
    "%d clients x %d requests (%d hostile): %.1f req/s, p50 %.1f ms, p99 %.1f \
     ms, %d batches (max %d)\n\
     %!"
    n_clients per_client !n_hostile rps p50 p99 stats.Serve.Protocol.batches
    stats.Serve.Protocol.max_batch;
  let rps_floor = 30.0 and p99_floor_ms = 500.0 in
  let floor_enforced = not !quick in
  if floor_enforced then begin
    if rps < rps_floor then
      failwith
        (Printf.sprintf "serve throughput %.1f req/s < floor %.1f" rps
           rps_floor);
    if p99 > p99_floor_ms then
      failwith
        (Printf.sprintf "serve p99 %.1f ms > floor %.1f ms" p99 p99_floor_ms)
  end
  else Printf.printf "latency floors not enforced (--quick)\n%!";
  (* ---- overload burst: 2x more clients than queue slots ----
     A bounded queue (max_queue) with a deliberately slowed batcher
     (deterministic pre-batch delay, max_batch=1 so batching cannot
     absorb the burst). Twice as many round-trip clients as queue
     slots keeps the queue saturated: the excess must be shed with
     structured "overloaded" replies — which is exactly what keeps
     p99 bounded under overload instead of growing with the backlog.
     Every request still gets exactly one reply. *)
  let ov_queue = 4 in
  let ov_clients = 2 * ov_queue in
  let ov_sock = Filename.temp_file "pigeon-bench-ov" ".sock" in
  Sys.remove ov_sock;
  let ov_cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some ov_sock;
      max_batch = 1;
      max_queue = ov_queue;
      faults =
        { Serve.Faults.disabled with Serve.Faults.pre_batch_delay_ms = 20 };
    }
  in
  let ov_server = Serve.Server.start engine ov_cfg in
  let ov_per = if !quick then 10 else 30 in
  let ov_total = ov_clients * ov_per in
  let ov_lat = Array.make ov_total 0.0 in
  let ov_shed = Array.make ov_clients 0 in
  let ov_client k =
    let c = Serve.Client.connect_unix ~read_timeout:60. ov_sock in
    for i = 0 to ov_per - 1 do
      let id = (k * ov_per) + i in
      let line = predict_line ~id sources.(id mod Array.length sources) in
      let t0 = Unix.gettimeofday () in
      match Serve.Client.request c line with
      | Some reply -> (
          ov_lat.(id) <- Unix.gettimeofday () -. t0;
          match Serve.Protocol.reply_error reply with
          | Some e when e.Serve.Protocol.kind = "overloaded" ->
              ov_shed.(k) <- ov_shed.(k) + 1
          | Some e ->
              failwith
                ("serve bench: unexpected error under overload: "
                ^ e.Serve.Protocol.msg)
          | None -> ())
      | None -> failwith "serve bench: daemon dropped an overload client"
    done;
    Serve.Client.close c
  in
  let ov_threads = List.init ov_clients (fun k -> Thread.create ov_client k) in
  List.iter Thread.join ov_threads;
  let ov_stats = Serve.Server.stats ov_server in
  Serve.Server.request_stop ov_server;
  Serve.Server.wait ov_server;
  let shed_total = Array.fold_left ( + ) 0 ov_shed in
  let shed_rate = float_of_int shed_total /. float_of_int ov_total in
  if ov_stats.Serve.Protocol.shed < shed_total then
    failwith "serve bench: shed replies exceed the daemon's shed counter";
  if ov_stats.Serve.Protocol.queue_hw > ov_queue then
    failwith "serve bench: queue high-water above max_queue";
  Array.sort compare ov_lat;
  let ov_pctl p =
    ov_lat.(min (ov_total - 1) (int_of_float (p *. float_of_int ov_total)))
    *. 1000.
  in
  let ov_p50 = ov_pctl 0.50 and ov_p99 = ov_pctl 0.99 in
  Printf.printf
    "overload: %d clients vs %d queue slots, %d requests: %.0f%% shed, p50 \
     %.1f ms, p99 %.1f ms (queue high-water %d)\n\
     %!"
    ov_clients ov_queue ov_total (100. *. shed_rate) ov_p50 ov_p99
    ov_stats.Serve.Protocol.queue_hw;
  let ov_p99_floor_ms = 2000.0 in
  if floor_enforced then begin
    if shed_total = 0 then
      failwith "serve bench: 2x overload burst shed nothing — queue unbounded?";
    if ov_p99 > ov_p99_floor_ms then
      failwith
        (Printf.sprintf "serve overload p99 %.1f ms > floor %.1f ms" ov_p99
           ov_p99_floor_ms)
  end;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"clients\": %d,\n  \"requests_per_client\": %d,\n"
    n_clients per_client;
  Printf.fprintf oc "  \"hostile_requests\": %d,\n" !n_hostile;
  Printf.fprintf oc "  \"ok_replies\": %d,\n  \"error_replies\": %d,\n"
    ok_total err_total;
  Printf.fprintf oc "  \"jobs\": %d,\n" stats.Serve.Protocol.jobs;
  Printf.fprintf oc "  \"batches\": %d,\n  \"max_batch\": %d,\n"
    stats.Serve.Protocol.batches stats.Serve.Protocol.max_batch;
  Printf.fprintf oc "  \"rps\": %.2f,\n  \"p50_ms\": %.2f,\n  \"p99_ms\": %.2f,\n"
    rps p50 p99;
  Printf.fprintf oc "  \"rps_floor\": %.1f,\n  \"p99_floor_ms\": %.1f,\n"
    rps_floor p99_floor_ms;
  Printf.fprintf oc "  \"floors_enforced\": %b,\n" floor_enforced;
  Printf.fprintf oc "  \"overload\": {\n";
  Printf.fprintf oc "    \"clients\": %d,\n    \"max_queue\": %d,\n"
    ov_clients ov_queue;
  Printf.fprintf oc "    \"requests\": %d,\n    \"shed\": %d,\n" ov_total
    shed_total;
  Printf.fprintf oc "    \"shed_rate\": %.4f,\n" shed_rate;
  Printf.fprintf oc "    \"queue_high_water\": %d,\n"
    ov_stats.Serve.Protocol.queue_hw;
  Printf.fprintf oc "    \"p50_ms\": %.2f,\n    \"p99_ms\": %.2f,\n" ov_p50
    ov_p99;
  Printf.fprintf oc "    \"p99_floor_ms\": %.1f\n" ov_p99_floor_ms;
  Printf.fprintf oc "  }\n";
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n%!"

(* ---------- incremental extraction (BENCH_incremental.json) ---------- *)

(* Editor workload: replay a generated edit trace (one buffer, one
   function replaced/inserted/deleted per step) through the
   incremental extraction cache and compare it, per edit, against
   from-scratch extraction. Two gates:

   - correctness, always: the cached context stream must be
     byte-identical (rendered strings, in order) to from-scratch at
     EVERY step, including the cold open;
   - speed, full runs only: >= 5x median per-edit extraction speedup
     (the cached side's first — truly incremental — extract after each
     edit, against a fresh-index fresh-tab extract of the same buffer;
     index builds excluded from both sides). End-to-end (index build
     included) is reported unenforced.

   Results go to BENCH_incremental.json. *)

let incremental_bench () =
  header "incremental: edit-trace extraction (cache vs from-scratch)";
  let lang = Pigeon.Lang.javascript in
  let cfg = lang.Pigeon.Lang.tuned in
  let funcs = if !quick then 10 else 28 in
  let steps = if !quick then 8 else 30 in
  let gen_config =
    {
      Corpus.Gen.default with
      Corpus.Gen.min_funcs = funcs;
      max_funcs = funcs;
      seed = 2018;
    }
  in
  let trace = Corpus.Gen.edit_trace ~steps gen_config lang.Pigeon.Lang.render_lang in
  let cache = Astpath.Cache.create () in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Per step: (extract speedup, end-to-end speedup); step 0 is the
     cold open — charged to the cache (it records everything) but not
     an edit, so it stays out of the per-edit medians. *)
  let ext_speedups = ref [] in
  let e2e_speedups = ref [] in
  let contexts = ref 0 in
  let nodes = ref 0 in
  List.iteri
    (fun step src ->
      let tree = lang.Pigeon.Lang.parse_tree src in
      (* From-scratch side: fresh index, fresh tab — what a stateless
         server does for every request. *)
      let idx_s = ref None in
      let t_idx_s = time (fun () -> idx_s := Some (Ast.Index.build tree)) in
      let idx_s = Option.get !idx_s in
      let n_s = ref 0 in
      let t_ext_s =
        time (fun () ->
            let tab = Astpath.Context.Tab.create idx_s in
            Astpath.Extract.iter_all ~tab idx_s cfg (fun _ -> incr n_s))
      in
      (* Cached side: session index (shared label table), then the
         first — truly incremental — extract after this edit. *)
      let idx_c = ref None in
      let t_idx_c =
        time (fun () -> idx_c := Some (Astpath.Cache.index cache tree))
      in
      let idx_c = Option.get !idx_c in
      let n_c = ref 0 in
      let t_ext_c =
        time (fun () ->
            Astpath.Extract.iter_all_cached ~cache idx_c cfg (fun _ ->
                incr n_c))
      in
      if !n_s <> !n_c then
        failwith
          (Printf.sprintf
             "incremental bench: step %d emitted %d cached contexts vs %d \
              from-scratch"
             step !n_c !n_s);
      (* Byte-identity, every step: untimed replay of both sides,
         rendered. The cache re-extract is all-hits — the contract
         says its stream is still the from-scratch one. *)
      let strings iter =
        let acc = ref [] in
        iter (fun c -> acc := Astpath.Context.to_string c :: !acc);
        List.rev !acc
      in
      let s_side =
        strings (fun f ->
            let tab = Astpath.Context.Tab.create idx_s in
            Astpath.Extract.iter_all ~tab idx_s cfg f)
      in
      let c_side =
        strings (fun f -> Astpath.Extract.iter_all_cached ~cache idx_c cfg f)
      in
      List.iteri
        (fun i (a, b) ->
          if not (String.equal a b) then
            failwith
              (Printf.sprintf
                 "incremental bench: step %d context %d differs:\n\
                    scratch: %s\n\
                    cached:  %s"
                 step i a b))
        (List.combine s_side c_side);
      contexts := !contexts + !n_s;
      nodes := !nodes + Ast.Index.size idx_s;
      if step > 0 then begin
        let ext = t_ext_s /. Float.max 1e-9 t_ext_c in
        let e2e =
          (t_idx_s +. t_ext_s) /. Float.max 1e-9 (t_idx_c +. t_ext_c)
        in
        ext_speedups := ext :: !ext_speedups;
        e2e_speedups := e2e :: !e2e_speedups
      end)
    trace;
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let ext_med = median !ext_speedups and e2e_med = median !e2e_speedups in
  let stats = Astpath.Cache.stats cache in
  Printf.printf
    "%d-function buffer, %d edits, %d contexts/step avg, %d nodes/step avg\n"
    funcs steps
    (!contexts / (steps + 1))
    (!nodes / (steps + 1));
  Printf.printf
    "cache: %d hits, %d misses, %d contexts replayed, %d paths stored (%d \
     bytes)\n"
    stats.Astpath.Cache.hits stats.Astpath.Cache.misses
    (Astpath.Cache.replayed cache)
    stats.Astpath.Cache.cached_paths stats.Astpath.Cache.bytes;
  Printf.printf
    "per-edit extraction speedup: median %.2fx (min %.2fx, max %.2fx)\n"
    ext_med
    (List.fold_left Float.min infinity !ext_speedups)
    (List.fold_left Float.max 0. !ext_speedups);
  Printf.printf "per-edit end-to-end speedup (incl. index build): median %.2fx\n%!"
    e2e_med;
  (* Floor: full runs only — quick traces are too small to time. *)
  let floor = 5.0 in
  let floor_enforced = not !quick in
  if floor_enforced then begin
    if ext_med < floor then
      failwith
        (Printf.sprintf
           "incremental extraction speedup %.2fx < %.1fx floor" ext_med floor)
  end
  else if ext_med < floor then
    Printf.printf
      "  warn: extraction speedup %.2fx below-floor %.1f (not enforced)\n%!"
      ext_med floor;
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"functions\": %d,\n  \"edits\": %d,\n" funcs steps;
  Printf.fprintf oc "  \"avg_contexts_per_step\": %d,\n"
    (!contexts / (steps + 1));
  Printf.fprintf oc "  \"avg_nodes_per_step\": %d,\n" (!nodes / (steps + 1));
  Printf.fprintf oc "  \"cache_hits\": %d,\n  \"cache_misses\": %d,\n"
    stats.Astpath.Cache.hits stats.Astpath.Cache.misses;
  Printf.fprintf oc "  \"contexts_replayed\": %d,\n"
    (Astpath.Cache.replayed cache);
  Printf.fprintf oc "  \"cached_paths\": %d,\n  \"cache_bytes\": %d,\n"
    stats.Astpath.Cache.cached_paths stats.Astpath.Cache.bytes;
  Printf.fprintf oc "  \"extract_speedup_median\": %.3f,\n" ext_med;
  Printf.fprintf oc "  \"e2e_speedup_median\": %.3f,\n" e2e_med;
  Printf.fprintf oc "  \"extract_speedups\": [%s],\n"
    (String.concat ", "
       (List.rev_map (Printf.sprintf "%.3f") !ext_speedups));
  Printf.fprintf oc "  \"speedup_floor\": %.1f,\n" floor;
  Printf.fprintf oc "  \"speedup_floor_enforced\": %b\n" floor_enforced;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_incremental.json\n%!"

(* ---------- out-of-core training (BENCH_oocore.json) ---------- *)

(* The out-of-core contract, measured end to end on the SGNS trainer:

   - extraction streams (word, context) pairs to disk shards, so the
     corpus never materializes in memory. We report the bytes the
     in-memory pipeline would have held (streamed estimate: string
     payloads plus list/tuple overhead) against a heap cap;
   - training streams the shards back; peak live heap is sampled
     (after a full major collection) at every shard boundary;
   - a run killed mid-training (simulated by raising out of the
     checkpoint callback) resumes from its checkpoint to a final model
     byte-identical to the uninterrupted run. The CRF trainer's
     resume gets the same check on a smaller graph corpus.

   Full runs enforce: materialized estimate > cap, peak live heap
   under the cap, and both resume byte-identities. --quick only warns
   (its corpus is too small to dwarf the base heap). Results go to
   BENCH_oocore.json. *)

let oocore_bench () =
  header "out-of-core: disk shards, bounded heap, checkpoint/resume";
  let lang = Pigeon.Lang.javascript in
  let n_files = if !quick then 40 else 240 in
  let sgns_config =
    {
      Word2vec.Sgns.default_config with
      Word2vec.Sgns.dim = 32;
      epochs = (if !quick then 2 else 3);
    }
  in
  let cap_mb = 32 in
  let cap_words = cap_mb * 1024 * 1024 / 8 in
  let records_per_shard = 16384 in
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pigeon-bench-oocore-%d" (Unix.getpid ()))
  in
  Unix.mkdir tmp 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm tmp with Sys_error _ -> ())
  @@ fun () ->
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let peak_live = ref 0 in
  let sample_live () =
    Gc.full_major ();
    peak_live := max !peak_live (Gc.stat ()).Gc.live_words
  in
  (* Extraction: sources stay local to this block so nothing keeps the
     corpus strings alive once the shards are on disk. *)
  let t0 = Unix.gettimeofday () in
  let set =
    let sources =
      Corpus.Gen.generate_sources
        { Corpus.Gen.default with Corpus.Gen.n_files; seed = 2018 }
        lang.Pigeon.Lang.render_lang
    in
    let set, report =
      Pigeon.W2v_task.extract_pair_shards ~records_per_shard ~lang
        ~mode:(Pigeon.W2v_task.Paths repr)
        ~dir:(Filename.concat tmp "pairs")
        sources
    in
    Pigeon.Ingest.log ~label:"oocore extract" report;
    set
  in
  let extract_s = Unix.gettimeofday () -. t0 in
  (* What the in-memory pipeline holds: a [(string * string) list] of
     every pair — per pair two string payloads (header word + data)
     plus a cons cell (3 words) and a tuple (3 words). Streamed, so
     the estimate itself allocates nothing that survives. *)
  let str_words len = 1 + ((len + 8) / 8) in
  let materialized_words =
    Corpus.Shard.fold_pairs set ~init:0 ~f:(fun acc a b ->
        acc
        + str_words (String.length (Corpus.Shard.string_of_id set a))
        + str_words (String.length (Corpus.Shard.string_of_id set b))
        + 6)
  in
  let plan =
    Pigeon.W2v_task.plan_of_set ~min_count:sgns_config.Word2vec.Sgns.min_count
      set
  in
  let shard_sizes = plan.Pigeon.W2v_task.plan_sizes in
  let n_shards = Array.length shard_sizes in
  let total_pairs = Array.fold_left ( + ) 0 shard_sizes in
  let train_stream ?from ?on_shard () =
    Word2vec.Sgns.train_stream ~config:sgns_config
      ~words:plan.Pigeon.W2v_task.plan_words
      ~contexts:plan.Pigeon.W2v_task.plan_contexts ~shard_sizes
      ~pairs_of_shard:(Pigeon.W2v_task.plan_pairs plan)
      ?from ?on_shard ()
  in
  sample_live ();
  let t1 = Unix.gettimeofday () in
  let golden =
    train_stream ~on_shard:(fun ~epoch:_ ~shard:_ _ -> sample_live ()) ()
  in
  let train_s = Unix.gettimeofday () -. t1 in
  let golden_bytes = Word2vec.Serialize.to_string golden in
  let pairs_per_s =
    float_of_int (sgns_config.Word2vec.Sgns.epochs * total_pairs) /. train_s
  in
  (* Kill mid-training: the checkpoint callback raises after half the
     (epoch, shard) units, exactly what a SIGKILL between two shards
     leaves behind; then resume from the surviving checkpoint. *)
  let kill_at = max 1 (sgns_config.Word2vec.Sgns.epochs * n_shards / 2) in
  let image = ref "" and units = ref 0 in
  (try
     ignore
       (train_stream
          ~on_shard:(fun ~epoch:_ ~shard:_ ck ->
            incr units;
            if !units = kill_at then begin
              image := Word2vec.Serialize.checkpoint_to_string ck;
              raise Exit
            end)
          ())
   with Exit -> ());
  let w2v_resumed_identical =
    match Word2vec.Serialize.checkpoint_of_string !image with
    | Error d -> failwith (Lexkit.Diag.to_string d)
    | Ok ck ->
        String.equal (Word2vec.Serialize.to_string (train_stream ~from:ck ()))
          golden_bytes
  in
  (* CRF trainer: same kill/resume discipline on a graph shard set. *)
  let crf_resumed_identical =
    let dir = Filename.concat tmp "graphs" in
    let sources =
      Corpus.Gen.generate_sources
        { Corpus.Gen.default with Corpus.Gen.n_files = 40; seed = 2018 }
        lang.Pigeon.Lang.render_lang
    in
    let set, report =
      Pigeon.Task.extract_graph_shards ~records_per_shard:16 ~repr ~lang
        ~policy:Pigeon.Graphs.Locals ~dir sources
    in
    Pigeon.Ingest.log ~label:"oocore graphs" report;
    let n_shards = Corpus.Shard.n_shards set in
    let config = crf_config 2 in
    let train ?from ?on_shard () =
      Crf.Train.train_of_shards ~config ~n_shards
        ~graphs_of_shard:(Pigeon.Task.graphs_of_shard set)
        ?from ?on_shard ()
    in
    let golden = Crf.Serialize.to_string (train ()) in
    let kill_at = max 1 (2 * n_shards / 2) in
    let image = ref "" and units = ref 0 in
    (try
       ignore
         (train
            ~on_shard:(fun ~it ~shard m ->
              incr units;
              if !units = kill_at then begin
                let next_it, next_shard =
                  if shard + 1 = n_shards then (it + 1, 0) else (it, shard + 1)
                in
                image :=
                  Crf.Serialize.checkpoint_to_string ~config ~next_it
                    ~next_shard ~n_shards ~jobs:1 m;
                raise Exit
              end)
            ())
     with Exit -> ());
    match Crf.Serialize.checkpoint_of_string !image with
    | Error d -> failwith (Lexkit.Diag.to_string d)
    | Ok ck ->
        String.equal
          (Crf.Serialize.to_string
             (train
                ~from:
                  ( ck.Crf.Serialize.ck_fast,
                    ck.Crf.Serialize.ck_next_it,
                    ck.Crf.Serialize.ck_next_shard )
                ()))
          golden
  in
  let mb words = float_of_int words *. 8. /. 1024. /. 1024. in
  Printf.printf
    "%d files -> %d pairs in %d shards (%d records/shard), extract %.1fs\n"
    n_files total_pairs n_shards records_per_shard extract_s;
  Printf.printf
    "materialized in-memory estimate: %.1f MB; heap cap: %d MB; peak live \
     heap during streaming training: %.1f MB\n"
    (mb materialized_words) cap_mb (mb !peak_live);
  Printf.printf "streaming training: %.1fs (%.0f pairs/s over %d epochs)\n"
    train_s pairs_per_s sgns_config.Word2vec.Sgns.epochs;
  Printf.printf "killed-then-resumed vs uninterrupted: sgns %s, crf %s\n%!"
    (if w2v_resumed_identical then "byte-identical" else "DIFFERS")
    (if crf_resumed_identical then "byte-identical" else "DIFFERS");
  let floors_enforced = not !quick in
  let fail_or_warn msg =
    if floors_enforced then failwith msg
    else Printf.printf "  warn: %s (not enforced under --quick)\n%!" msg
  in
  if not w2v_resumed_identical then
    fail_or_warn "sgns resumed model differs from uninterrupted run";
  if not crf_resumed_identical then
    fail_or_warn "crf resumed model differs from uninterrupted run";
  if materialized_words <= cap_words then
    fail_or_warn
      (Printf.sprintf
         "materialized corpus estimate %.1f MB does not exceed the %d MB cap"
         (mb materialized_words) cap_mb);
  if !peak_live > cap_words then
    fail_or_warn
      (Printf.sprintf "peak live heap %.1f MB exceeds the %d MB cap"
         (mb !peak_live) cap_mb);
  let oc = open_out "BENCH_oocore.json" in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"quick\": %b,\n" !quick;
  Printf.fprintf oc "  \"files\": %d,\n" n_files;
  Printf.fprintf oc "  \"pairs\": %d,\n  \"shards\": %d,\n" total_pairs
    n_shards;
  Printf.fprintf oc "  \"records_per_shard\": %d,\n" records_per_shard;
  Printf.fprintf oc "  \"epochs\": %d,\n" sgns_config.Word2vec.Sgns.epochs;
  Printf.fprintf oc "  \"extract_seconds\": %.3f,\n" extract_s;
  Printf.fprintf oc "  \"train_seconds\": %.3f,\n" train_s;
  Printf.fprintf oc "  \"pairs_per_second\": %.0f,\n" pairs_per_s;
  Printf.fprintf oc "  \"heap_cap_mb\": %d,\n" cap_mb;
  Printf.fprintf oc "  \"materialized_estimate_mb\": %.2f,\n"
    (mb materialized_words);
  Printf.fprintf oc "  \"peak_live_heap_mb\": %.2f,\n" (mb !peak_live);
  Printf.fprintf oc "  \"sgns_resume_byte_identical\": %b,\n"
    w2v_resumed_identical;
  Printf.fprintf oc "  \"crf_resume_byte_identical\": %b,\n"
    crf_resumed_identical;
  Printf.fprintf oc "  \"floors_enforced\": %b\n" floors_enforced;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_oocore.json\n%!"

(* ---------- driver ---------- *)

let experiments =
  [
    ("table1", table1);
    ("table2-var", table2_var);
    ("table2-method", table2_method);
    ("table2-type", table2_type);
    ("table3", table3);
    ("table4", table4);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fault", fault);
    ("parallel", parallel_bench);
    ("train", train_bench);
    ("intern", intern_bench);
    ("serve", serve_bench);
    ("incremental", incremental_bench);
    ("oocore", oocore_bench);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if String.equal a "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    selected;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
