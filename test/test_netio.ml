(* Edge-case tests for Serve.Netio over real socketpairs: the idle
   timeout firing mid-line (slowloris), short-write retry under a tiny
   SO_SNDBUF, write timeouts against a peer that stops draining, and
   the pinned oversized-line behavior (Overflow is sticky — the stream
   can never resync, callers must close). *)

module Netio = Serve.Netio

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let socketpair () =
  Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0

let with_pair f =
  let a, b = socketpair () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* ---------- idle timeout ---------- *)

let test_timeout_no_data () =
  with_pair (fun a _b ->
      let lr = Netio.line_reader ~idle_timeout:0.1 a in
      let t0 = Unix.gettimeofday () in
      (match Netio.read_line lr with
      | Netio.Timeout -> ()
      | _ -> Alcotest.fail "expected Timeout on a silent peer");
      let dt = Unix.gettimeofday () -. t0 in
      check_bool "fired promptly" true (dt >= 0.09 && dt < 2.0))

let test_timeout_mid_line () =
  (* A slow writer that trickles a partial request and stalls: the
     idle budget must fire even though bytes did arrive — the reader
     is not parked forever waiting for the closing newline. *)
  with_pair (fun a b ->
      let lr = Netio.line_reader ~idle_timeout:0.15 a in
      let writer =
        Thread.create
          (fun () ->
            ignore (Unix.write_substring b "{\"op\":\"pi" 0 9)
            (* …and never finishes the line *))
          ()
      in
      (match Netio.read_line lr with
      | Netio.Timeout -> ()
      | Netio.Line l -> Alcotest.failf "unexpected line %S" l
      | _ -> Alcotest.fail "expected Timeout mid-line");
      Thread.join writer;
      (* the trickled prefix is still buffered: finishing the line
         after the timeout still frames correctly (the caller decides
         to close; the reader itself stays consistent) *)
      ignore (Unix.write_substring b "ng\"}\n" 0 5);
      match Netio.read_line lr with
      | Netio.Line l -> check_string "resumed frame" "{\"op\":\"ping\"}" l
      | _ -> Alcotest.fail "expected the completed line")

let test_timeout_resets_on_activity () =
  (* Each arriving byte resets the idle budget: a line that takes
     several budgets to arrive, with per-byte gaps under the budget,
     still reads fine. *)
  with_pair (fun a b ->
      let lr = Netio.line_reader ~idle_timeout:0.2 a in
      let msg = "slow but steady\n" in
      let writer =
        Thread.create
          (fun () ->
            String.iter
              (fun c ->
                Thread.delay 0.04;
                ignore (Unix.write_substring b (String.make 1 c) 0 1))
              msg)
          ()
      in
      (match Netio.read_line lr with
      | Netio.Line l -> check_string "whole line" "slow but steady" l
      | _ -> Alcotest.fail "expected the line despite slow writing");
      Thread.join writer)

(* ---------- short writes ---------- *)

let test_short_write_retry () =
  (* Shrink both socket buffers so a large line cannot fit in one
     write; write_line must loop through partial writes (and EAGAIN,
     on a non-blocking fd) until every byte is out. *)
  with_pair (fun a b ->
      (try
         Unix.setsockopt_int b Unix.SO_SNDBUF 4096;
         Unix.setsockopt_int a Unix.SO_RCVBUF 4096
       with Unix.Unix_error _ -> ());
      Unix.set_nonblock b;
      let payload = String.init 1_000_000 (fun i -> Char.chr (65 + (i mod 26))) in
      let writer = Thread.create (fun () -> Netio.write_line b payload) () in
      let lr = Netio.line_reader ~max_line:(2 * String.length payload) a in
      (match Netio.read_line lr with
      | Netio.Line l ->
          check_bool "length intact" true (String.length l = String.length payload);
          check_bool "bytes intact" true (String.equal l payload)
      | _ -> Alcotest.fail "expected the full line");
      Thread.join writer)

let test_write_timeout_peer_not_draining () =
  (* The peer never reads: once the socket buffers fill, a bounded
     write_line must raise ETIMEDOUT instead of wedging the caller
     (this is what protects the daemon's batcher from a client that
     stops draining replies). *)
  with_pair (fun _a b ->
      Unix.set_nonblock b;
      let payload = String.make 8_000_000 'x' in
      match Netio.write_line ~timeout:0.2 b payload with
      | () -> Alcotest.fail "expected ETIMEDOUT against a full buffer"
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> ())

(* ---------- oversized lines ---------- *)

let test_overflow_sticky () =
  (* Pinned behavior: once a line exceeds max_line, the reader reports
     Overflow and keeps reporting it — framing is unrecoverable, the
     caller must answer (at most once) and close. Even a newline
     arriving later must not resync the stream. *)
  with_pair (fun a b ->
      let lr = Netio.line_reader ~max_line:64 a in
      let chunk = String.make 256 'z' in
      ignore (Unix.write_substring b chunk 0 (String.length chunk));
      (match Netio.read_line lr with
      | Netio.Overflow -> ()
      | _ -> Alcotest.fail "expected Overflow");
      ignore (Unix.write_substring b "\n" 0 1);
      (match Netio.read_line lr with
      | Netio.Overflow -> ()
      | _ -> Alcotest.fail "Overflow must be sticky");
      Unix.close b;
      match Netio.read_line lr with
      | Netio.Overflow -> ()
      | _ -> Alcotest.fail "Overflow must be sticky after EOF too")

let test_line_under_cap_ok () =
  with_pair (fun a b ->
      let lr = Netio.line_reader ~max_line:64 a in
      ignore (Unix.write_substring b "short\n" 0 6);
      match Netio.read_line lr with
      | Netio.Line l -> check_string "short line" "short" l
      | _ -> Alcotest.fail "expected the short line")

let () =
  Alcotest.run "netio"
    [
      ( "timeout",
        [
          Alcotest.test_case "silent peer" `Quick test_timeout_no_data;
          Alcotest.test_case "mid-line (slowloris)" `Quick test_timeout_mid_line;
          Alcotest.test_case "resets on activity" `Quick
            test_timeout_resets_on_activity;
        ] );
      ( "writes",
        [
          Alcotest.test_case "short-write retry (tiny SO_SNDBUF)" `Quick
            test_short_write_retry;
          Alcotest.test_case "write timeout (peer not draining)" `Quick
            test_write_timeout_peer_not_draining;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "sticky overflow" `Quick test_overflow_sticky;
          Alcotest.test_case "under cap" `Quick test_line_under_cap_ok;
        ] );
    ]
