(* Tests for CRF model serialization: byte-level escaping, structural
   round-trips, and — the property that matters — identical predictions
   from a saved-and-reloaded model. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_node id gold kind = { Crf.Graph.id; gold; kind }

(* A richer synthetic world, with awkward strings in labels and rels:
   spaces, percent signs, unicode arrows (as in real path strings). *)
let graphs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "done"; "stop" ]) `Unknown;
              mk_node 1 "hello, world %20" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1
                ~rel:"SymbolRef\xe2\x86\x91While\xe2\x86\x93True";
              Crf.Graph.unary ~n:0 ~rel:"loop guard";
            ]
      else
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "count"; "total" ]) `Unknown;
              mk_node 1 "0" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.unary ~n:0 ~rel:"incr\ttab";
            ])

let train () = Crf.Train.train (graphs ~n:200 ~seed:5)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_temp_file ext f =
  let path = Filename.temp_file "pigeon" ext in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let diag_kind = function
  | Ok _ -> Alcotest.fail "expected a load failure"
  | Error d -> d.Lexkit.Diag.kind

let roundtrip model =
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      Crf.Serialize.load_exn path)

let test_roundtrip_predictions () =
  let model = train () in
  let model' = roundtrip model in
  let test_graphs = graphs ~n:80 ~seed:6 in
  List.iter
    (fun g ->
      check_bool "identical predictions" true
        (Crf.Train.predict model g = Crf.Train.predict model' g))
    test_graphs

let test_roundtrip_top_k () =
  let model = train () in
  let model' = roundtrip model in
  let g = List.hd (graphs ~n:1 ~seed:7) in
  let k1 = Crf.Train.top_k model g ~node:0 ~k:5 in
  let k2 = Crf.Train.top_k model' g ~node:0 ~k:5 in
  check_bool "same ranking" true (List.map fst k1 = List.map fst k2)

let test_roundtrip_config () =
  let config =
    {
      Crf.Train.default_config with
      Crf.Train.iterations = 3;
      averaged = false;
      trainer = Crf.Fast.Structured;
      init = Crf.Fast.No_init;
    }
  in
  let model = Crf.Train.train ~config (graphs ~n:50 ~seed:8) in
  let model' = roundtrip model in
  check_int "iterations" 3 model'.Crf.Train.config.Crf.Train.iterations;
  check_bool "averaged" false model'.Crf.Train.config.Crf.Train.averaged;
  check_bool "trainer" true
    (model'.Crf.Train.config.Crf.Train.trainer = Crf.Fast.Structured);
  check_bool "init" true (model'.Crf.Train.config.Crf.Train.init = Crf.Fast.No_init)

let test_weights_survive () =
  let model = train () in
  let model' = roundtrip model in
  check_int "same number of features"
    (Crf.Model.size (Lazy.force model.Crf.Train.weights))
    (Crf.Model.size (Lazy.force model'.Crf.Train.weights));
  (* spot-check every feature's weight *)
  Crf.Model.iter (Lazy.force model.Crf.Train.weights) (fun f w ->
      Alcotest.(check (float 1e-12))
        "weight preserved" w
        (Crf.Model.get (Lazy.force model'.Crf.Train.weights) f))

let test_double_roundtrip_stable () =
  let model = train () in
  let once = roundtrip model in
  let twice = roundtrip once in
  let g = List.hd (graphs ~n:1 ~seed:9) in
  check_bool "fixed point" true
    (Crf.Train.predict once g = Crf.Train.predict twice g)

let test_malformed_input () =
  with_temp_file ".crf" (fun path ->
      write_file path "not a model\n";
      check_bool "corrupt-model diagnostic" true
        (diag_kind (Crf.Serialize.load path) = Lexkit.Diag.Corrupt_model))

let test_unknown_record () =
  with_temp_file ".crf" (fun path ->
      write_file path "pigeon-crf-model 1\nfrobnicate 42\n";
      match Crf.Serialize.load path with
      | Ok _ -> Alcotest.fail "expected failure"
      | Error d ->
          check_bool "corrupt-model kind" true
            (d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model);
          check_int "line number" 2
            (match d.Lexkit.Diag.pos with
            | Some p -> p.Lexkit.line
            | None -> -1))

let test_missing_file () =
  check_bool "io-error diagnostic" true
    (diag_kind (Crf.Serialize.load "/nonexistent/model.crf")
    = Lexkit.Diag.Io_error)

let test_truncation_detected () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let full = read_file path in
      (* chop the trailer and some records off the end *)
      let cut = String.length full - (String.length full / 4) in
      write_file path (String.sub full 0 cut);
      check_bool "truncation is a corrupt-model error" true
        (diag_kind (Crf.Serialize.load path) = Lexkit.Diag.Corrupt_model))

let test_trailing_garbage_detected () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      write_file path (read_file path ^ "label extra\n");
      check_bool "appended record is a corrupt-model error" true
        (diag_kind (Crf.Serialize.load path) = Lexkit.Diag.Corrupt_model))

let save_v2 to_channel_v2 model path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel_v2 model oc)

let test_v2_compat () =
  (* The v2 text writer is kept for fixtures; its output must still
     load into an equivalent model. *)
  let model = train () in
  with_temp_file ".crf" (fun path ->
      save_v2 Crf.Serialize.to_channel_v2 model path;
      let model' = Crf.Serialize.load_exn path in
      List.iter
        (fun g ->
          check_bool "v2 file predicts identically" true
            (Crf.Train.predict model g = Crf.Train.predict model' g))
        (graphs ~n:40 ~seed:10))

let test_v1_compat () =
  (* A version-1 file is a version-2 file minus the trailer. *)
  let model = train () in
  with_temp_file ".crf" (fun path ->
      save_v2 Crf.Serialize.to_channel_v2 model path;
      let lines = String.split_on_char '\n' (read_file path) in
      let v1 =
        List.filter
          (fun l -> not (String.length l >= 4 && String.sub l 0 4 = "end "))
          lines
        |> List.map (fun l ->
               if l = "pigeon-crf-model 2" then "pigeon-crf-model 1" else l)
        |> String.concat "\n"
      in
      write_file path v1;
      let model' = Crf.Serialize.load_exn path in
      let g = List.hd (graphs ~n:1 ~seed:11) in
      check_bool "v1 file predicts identically" true
        (Crf.Train.predict model g = Crf.Train.predict model' g))

let test_v4_byte_identical_roundtrip () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let bytes = read_file path in
      check_bool "writes the v4 magic" true
        (String.length bytes > 19 && String.sub bytes 0 19 = "pigeon-crf-model 4\n");
      let model' = Crf.Serialize.load_exn path in
      check_bool "save(load(save)) is byte-identical" true
        (String.equal bytes (Crf.Serialize.to_string model')))

let test_v3_compat () =
  (* The v3 binary writer is kept for fixtures; its output must still
     load into a model predicting identically. *)
  let model = train () in
  with_temp_file ".crf" (fun path ->
      write_file path (Crf.Serialize.to_string_v3 model);
      let model' = Crf.Serialize.load_exn path in
      List.iter
        (fun g ->
          check_bool "v3 file predicts identically" true
            (Crf.Train.predict model g = Crf.Train.predict model' g))
        (graphs ~n:40 ~seed:13))

let test_binary_midfile_corruption () =
  (* A single flipped bit deep inside a section payload is invisible
     to the framing; the checksum trailer still rejects it — in both
     binary generations. *)
  let model = train () in
  List.iter
    (fun bytes ->
      let b = Bytes.of_string bytes in
      let i = String.length bytes / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      check_bool "flipped payload bit is corrupt-model" true
        (diag_kind (Crf.Serialize.of_string (Bytes.to_string b))
        = Lexkit.Diag.Corrupt_model))
    [ Crf.Serialize.to_string model; Crf.Serialize.to_string_v3 model ]

let test_of_string_roundtrip () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      match Crf.Serialize.of_string (read_file path) with
      | Error d -> Alcotest.fail (Lexkit.Diag.to_string d)
      | Ok model' ->
          let g = List.hd (graphs ~n:1 ~seed:12) in
          check_bool "of_string predicts identically" true
            (Crf.Train.predict model g = Crf.Train.predict model' g))

(* ---------- word2vec serialization ---------- *)

let sgns_pairs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        (pick [ "done"; "finished" ], pick [ "loop ctx"; "assign%true" ])
      else (pick [ "count"; "total" ], pick [ "init zero"; "incr" ]))

let w2v_roundtrip model =
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      Word2vec.Serialize.load_exn path)

let test_w2v_roundtrip_predictions () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 10 }
      (sgns_pairs ~n:800 ~seed:3)
  in
  let model' = w2v_roundtrip model in
  List.iter
    (fun ctxs ->
      check_bool "same ranking" true
        (List.map fst (Word2vec.Sgns.predict model ctxs)
        = List.map fst (Word2vec.Sgns.predict model' ctxs)))
    [ [ "loop ctx" ]; [ "incr"; "init zero" ]; [ "assign%true"; "loop ctx" ] ]

let test_w2v_roundtrip_similarity () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 10 }
      (sgns_pairs ~n:800 ~seed:4)
  in
  let model' = w2v_roundtrip model in
  check_bool "same neighbors" true
    (List.map fst (Word2vec.Sgns.most_similar model "done" ~k:3)
    = List.map fst (Word2vec.Sgns.most_similar model' "done" ~k:3))

let test_w2v_roundtrip_config () =
  let config =
    { Word2vec.Sgns.default_config with Word2vec.Sgns.dim = 16; epochs = 2 }
  in
  let model = Word2vec.Sgns.train ~config (sgns_pairs ~n:100 ~seed:5) in
  let model' = w2v_roundtrip model in
  check_int "dim" 16 model'.Word2vec.Sgns.config.Word2vec.Sgns.dim;
  check_int "epochs" 2 model'.Word2vec.Sgns.config.Word2vec.Sgns.epochs

let test_w2v_malformed () =
  with_temp_file ".w2v" (fun path ->
      write_file path "garbage\n";
      check_bool "corrupt-model diagnostic" true
        (diag_kind (Word2vec.Serialize.load path) = Lexkit.Diag.Corrupt_model))

let test_w2v_truncation_detected () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
      (sgns_pairs ~n:200 ~seed:6)
  in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      let full = read_file path in
      let cut = String.length full - (String.length full / 3) in
      write_file path (String.sub full 0 cut);
      check_bool "truncation is a corrupt-model error" true
        (diag_kind (Word2vec.Serialize.load path) = Lexkit.Diag.Corrupt_model))

let test_w2v_v2_compat () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 10 }
      (sgns_pairs ~n:800 ~seed:8)
  in
  with_temp_file ".w2v" (fun path ->
      save_v2 Word2vec.Serialize.to_channel_v2 model path;
      let model' = Word2vec.Serialize.load_exn path in
      check_bool "v2 file ranks identically" true
        (List.map fst (Word2vec.Sgns.predict model [ "loop ctx" ])
        = List.map fst (Word2vec.Sgns.predict model' [ "loop ctx" ])))

let test_w2v_v4_byte_identical_roundtrip () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
      (sgns_pairs ~n:300 ~seed:9)
  in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      let bytes = read_file path in
      check_bool "writes the v4 magic" true
        (String.length bytes > 19 && String.sub bytes 0 19 = "pigeon-w2v-model 4\n");
      let model' = Word2vec.Serialize.load_exn path in
      check_bool "save(load(save)) is byte-identical" true
        (String.equal bytes (Word2vec.Serialize.to_string model'));
      (* Binary floats round-trip exactly, not through decimal. *)
      check_bool "vectors bitwise identical" true
        (model.Word2vec.Sgns.word_vecs = model'.Word2vec.Sgns.word_vecs
        && model.Word2vec.Sgns.context_vecs = model'.Word2vec.Sgns.context_vecs))

let test_w2v_v3_compat () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
      (sgns_pairs ~n:300 ~seed:10)
  in
  with_temp_file ".w2v" (fun path ->
      write_file path (Word2vec.Serialize.to_string_v3 model);
      let model' = Word2vec.Serialize.load_exn path in
      check_bool "v3 vectors bitwise identical" true
        (model.Word2vec.Sgns.word_vecs = model'.Word2vec.Sgns.word_vecs
        && model.Word2vec.Sgns.context_vecs = model'.Word2vec.Sgns.context_vecs))

let test_w2v_trailing_garbage_detected () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
      (sgns_pairs ~n:200 ~seed:7)
  in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      write_file path (read_file path ^ "w extra 1 0 0\n");
      check_bool "appended record is a corrupt-model error" true
        (diag_kind (Word2vec.Serialize.load path) = Lexkit.Diag.Corrupt_model))

(* ---------- atomic saves ---------- *)

let tmp_siblings path =
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f ->
         String.length f > String.length base
         && String.sub f 0 (String.length base) = base
         && f <> base)

let test_atomic_save_no_tmp_leftover () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      Crf.Serialize.save model path;
      Alcotest.(check (list string)) "no temp files left" [] (tmp_siblings path);
      check_bool "overwritten model loads" true
        (match Crf.Serialize.load path with Ok _ -> true | Error _ -> false));
  let w2v =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 1 }
      (sgns_pairs ~n:100 ~seed:9)
  in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save w2v path;
      Word2vec.Serialize.save w2v path;
      Alcotest.(check (list string)) "no temp files left" [] (tmp_siblings path);
      check_bool "overwritten model loads" true
        (match Word2vec.Serialize.load path with Ok _ -> true | Error _ -> false))

(* The bug this pins down: the old save wrote straight into the target,
   so a crash mid-write left a truncated file where a good model used
   to be. With atomic saves the target always holds a complete model:
   kill a child that overwrites the model in a tight loop, then load.
   One iteration only proves atomicity probabilistically; several kills
   make a regression to in-place writes essentially certain to fail. *)
let test_atomic_save_survives_kill () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let golden = read_file path in
      for _round = 1 to 3 do
        (match Unix.fork () with
        | 0 ->
            (try
               while true do
                 Crf.Serialize.save model path
               done
             with _ -> ());
            Unix._exit 1
        | pid ->
            (* let the child get into the middle of a write *)
            ignore (Unix.select [] [] [] 0.05);
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid));
        check_bool "model intact after SIGKILL mid-save" true
          (match Crf.Serialize.load path with Ok _ -> true | Error _ -> false);
        check_bool "target holds a complete model" true
          (String.equal (read_file path) golden)
      done;
      (* killed children may leave a temp file behind; that temp never
         shadows the target and a later save still lands cleanly *)
      Crf.Serialize.save model path;
      check_bool "post-kill save still loads" true
        (match Crf.Serialize.load path with Ok _ -> true | Error _ -> false);
      List.iter
        (fun f -> Sys.remove (Filename.concat (Filename.dirname path) f))
        (tmp_siblings path))

let suite =
  [
    ( "atomic-save",
      [
        Alcotest.test_case "no temp leftovers" `Quick
          test_atomic_save_no_tmp_leftover;
        Alcotest.test_case "SIGKILL mid-save keeps a loadable model" `Quick
          test_atomic_save_survives_kill;
      ] );
    ( "w2v-serialize",
      [
        Alcotest.test_case "prediction round-trip" `Quick test_w2v_roundtrip_predictions;
        Alcotest.test_case "similarity round-trip" `Quick test_w2v_roundtrip_similarity;
        Alcotest.test_case "config round-trip" `Quick test_w2v_roundtrip_config;
        Alcotest.test_case "malformed input" `Quick test_w2v_malformed;
        Alcotest.test_case "truncation detected" `Quick test_w2v_truncation_detected;
        Alcotest.test_case "trailing garbage detected" `Quick test_w2v_trailing_garbage_detected;
        Alcotest.test_case "v2 compatibility" `Quick test_w2v_v2_compat;
        Alcotest.test_case "v3 compatibility" `Quick test_w2v_v3_compat;
        Alcotest.test_case "v4 byte-identical round-trip" `Quick
          test_w2v_v4_byte_identical_roundtrip;
      ] );
    ( "serialize",
      [
        Alcotest.test_case "prediction round-trip" `Quick test_roundtrip_predictions;
        Alcotest.test_case "top-k round-trip" `Quick test_roundtrip_top_k;
        Alcotest.test_case "config round-trip" `Quick test_roundtrip_config;
        Alcotest.test_case "weights survive" `Quick test_weights_survive;
        Alcotest.test_case "double round-trip stable" `Quick test_double_roundtrip_stable;
        Alcotest.test_case "malformed input" `Quick test_malformed_input;
        Alcotest.test_case "unknown record" `Quick test_unknown_record;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        Alcotest.test_case "truncation detected" `Quick test_truncation_detected;
        Alcotest.test_case "trailing garbage detected" `Quick test_trailing_garbage_detected;
        Alcotest.test_case "v1 compatibility" `Quick test_v1_compat;
        Alcotest.test_case "v2 compatibility" `Quick test_v2_compat;
        Alcotest.test_case "v3 compatibility" `Quick test_v3_compat;
        Alcotest.test_case "v4 byte-identical round-trip" `Quick
          test_v4_byte_identical_roundtrip;
        Alcotest.test_case "binary mid-file corruption" `Quick
          test_binary_midfile_corruption;
        Alcotest.test_case "of_string round-trip" `Quick test_of_string_roundtrip;
      ] );
  ]

let () = Alcotest.run "serialize" suite
