(* The zero-copy (mmap) model loading gate.

   Two properties carry the whole feature:
   - byte-identity: a mapped model predicts byte-identical to the heap
     copy of the same file, sequentially and over a pool, and writes
     back the very same file;
   - containment: every way a mapped file can be damaged — truncation,
     bit flips anywhere, hostile section lengths, a file shorter than
     its header — surfaces as a [Corrupt_model] diagnostic (at load or
     at first use), never a crash, a wild read, or an Out_of_memory. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_node id gold kind = { Crf.Graph.id; gold; kind }

let graphs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "done"; "stop" ]) `Unknown;
              mk_node 1 "hello, world %20" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1
                ~rel:"SymbolRef\xe2\x86\x91While\xe2\x86\x93True";
              Crf.Graph.unary ~n:0 ~rel:"loop guard";
            ]
      else
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "count"; "total" ]) `Unknown;
              mk_node 1 "0" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.unary ~n:0 ~rel:"incr\ttab";
            ])

let train () = Crf.Train.train (graphs ~n:200 ~seed:5)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_temp_file ext f =
  let path = Filename.temp_file "pigeon" ext in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let load_mapped_exn path =
  match Crf.Serialize.load_mapped path with
  | Ok ms -> ms
  | Error d -> Alcotest.fail (Lexkit.Diag.to_string d)

(* ---------- byte-identity ---------- *)

let test_crf_mapped_is_mapped () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let mapped, storage = load_mapped_exn path in
      check_bool "storage reports mapped" true
        (match storage with Lexkit.Storage.Mapped _ -> true | _ -> false);
      check_int "mapped bytes = file size"
        (String.length (read_file path))
        (Lexkit.Storage.mapped_bytes storage);
      check_bool "weight tables are mapped" true
        (Crf.Fast.storage mapped.Crf.Train.fast = `Mapped))

let test_crf_byte_identical_predictions () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let heap = Crf.Serialize.load_exn path in
      let mapped, _ = load_mapped_exn path in
      let test_graphs = graphs ~n:80 ~seed:6 in
      (* Sequential: graph by graph. *)
      List.iter
        (fun g ->
          check_bool "identical predictions (jobs=1)" true
            (Crf.Train.predict heap g = Crf.Train.predict mapped g))
        test_graphs;
      (* Pooled: the whole batch across domains. *)
      let pool = Parallel.create ~jobs:2 () in
      Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
      check_bool "identical predictions (pooled)" true
        (Crf.Train.predict_batch ~pool heap test_graphs
        = Crf.Train.predict_batch ~pool mapped test_graphs))

let test_crf_save_map_save_bit_exact () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let bytes = read_file path in
      let mapped, _ = load_mapped_exn path in
      check_bool "save(map(save)) is byte-identical" true
        (String.equal bytes (Crf.Serialize.to_string mapped)))

let test_crf_no_mmap_for_old_formats () =
  (* v2 and v3 files still load through [load_mapped] — as heap copies
     carrying a downgrade note, not as errors. *)
  let model = train () in
  with_temp_file ".crf" (fun path ->
      write_file path (Crf.Serialize.to_string_v3 model);
      let m3, storage = load_mapped_exn path in
      check_bool "v3 file downgrades to a heap copy" true
        (match storage with
        | Lexkit.Storage.Heap { note = Some _ } -> true
        | _ -> false);
      let g = List.hd (graphs ~n:1 ~seed:7) in
      check_bool "downgraded model predicts identically" true
        (Crf.Train.predict model g = Crf.Train.predict m3 g))

let test_itbl_mapped_read_only () =
  let keys = [| 1; 5; 9 |] in
  let vals =
    Bigarray.Array1.of_array Bigarray.float64 Bigarray.c_layout
      [| 0.5; -1.25; 3.75 |]
  in
  let t = Crf.Itbl.of_sorted_mapped ~keys ~vals ~verify:(fun () -> ()) in
  check_bool "get finds mapped entries" true
    (Crf.Itbl.get t 5 = -1.25 && Crf.Itbl.get t 2 = 0.);
  check_bool "add on a mapped table is refused" true
    (match Crf.Itbl.add t 5 1. with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ---------- corruption containment ---------- *)

(* A damaged file must answer with [Corrupt_model] — either at load
   (structure, eager checksums) or at first use (the lazy mapped float
   checksums) — and never anything else. *)
let contained path =
  match Crf.Serialize.load_mapped path with
  | Error d -> d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model
  | Ok (m, _) -> (
      let g = List.hd (graphs ~n:1 ~seed:8) in
      match Crf.Train.predict m g with
      | _ -> false (* damage slipped through *)
      | exception Lexkit.Diag.Error d ->
          d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model)

let test_crf_mapped_truncations () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let full = read_file path in
      let n = String.length full in
      (* Cuts everywhere: mid-magic, mid-header, mid-payload, mid-float
         run, mid-trailer. *)
      List.iter
        (fun cut ->
          write_file path (String.sub full 0 cut);
          check_bool
            (Printf.sprintf "truncation at %d/%d bytes is contained" cut n)
            true (contained path))
        [ 5; 19; 40; n / 4; n / 2; (3 * n) / 4; n - 40; n - 1 ])

let test_crf_mapped_bit_flips () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let full = read_file path in
      let n = String.length full in
      (* A flip at every stride-th byte: magic, symbol tables, weight
         keys, float runs, candidate sections, pads, trailer — all of
         it must be caught by framing or a checksum. *)
      let positions = List.init 41 (fun i -> i * (n - 1) / 40) in
      List.iter
        (fun i ->
          let b = Bytes.of_string full in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          write_file path (Bytes.to_string b);
          check_bool
            (Printf.sprintf "bit flip at byte %d/%d is contained" i n)
            true (contained path))
        positions)

let test_crf_mapped_hostile_lengths () =
  let model = train () in
  with_temp_file ".crf" (fun path ->
      Crf.Serialize.save model path;
      let full = read_file path in
      (* The first section header's length field lives at bytes 20-27
         (magic 19, tag 1). Hostile values must fail as framing errors,
         not as allocations or wild reads. *)
      List.iter
        (fun (le_bytes : string) ->
          let b = Bytes.of_string full in
          Bytes.blit_string le_bytes 0 b 20 8;
          write_file path (Bytes.to_string b);
          check_bool "hostile section length is contained" true
            (contained path))
        [
          "\xff\xff\xff\xff\xff\xff\xff\x7f" (* max_int64 *);
          "\xff\xff\xff\xff\xff\xff\xff\xff" (* -1 *);
          "\x00\x00\x00\x00\x00\x00\x00\x40" (* 2^62 *);
        ])

let test_crf_mapped_short_files () =
  with_temp_file ".crf" (fun path ->
      List.iter
        (fun content ->
          write_file path content;
          check_bool "short/garbage file is contained" true (contained path))
        [
          "";
          "pig";
          "pigeon-crf-model 4";
          "pigeon-crf-model 4\n";
          "pigeon-crf-model 4\n\x01";
          String.make 64 '\x00';
        ])

(* ---------- word2vec ---------- *)

let sgns_pairs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        (pick [ "done"; "finished" ], pick [ "loop ctx"; "assign%true" ])
      else (pick [ "count"; "total" ], pick [ "init zero"; "incr" ]))

let train_w2v () =
  Word2vec.Sgns.train
    ~config:{ Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
    (sgns_pairs ~n:300 ~seed:9)

let w2v_load_mapped_exn path =
  match Word2vec.Serialize.load_mapped path with
  | Ok vs -> vs
  | Error d -> Alcotest.fail (Lexkit.Diag.to_string d)

let test_w2v_mapped_byte_identity () =
  let model = train_w2v () in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      let view, storage = w2v_load_mapped_exn path in
      check_bool "storage reports mapped" true
        (match storage with Lexkit.Storage.Mapped _ -> true | _ -> false);
      check_bool "view reports mapped" true
        (Word2vec.Sgns.view_storage view = `Mapped);
      List.iter
        (fun ctxs ->
          check_bool "identical predictions" true
            (Word2vec.Sgns.predict model ctxs
            = Word2vec.Sgns.predict_view view ctxs))
        [ [ "loop ctx" ]; [ "incr"; "init zero" ]; [ "assign%true" ] ];
      check_bool "identical neighbors" true
        (Word2vec.Sgns.most_similar model "done" ~k:3
        = Word2vec.Sgns.most_similar_view view "done" ~k:3);
      (* save → map → materialize → save is bit-exact. *)
      check_bool "save(map(save)) is byte-identical" true
        (String.equal (read_file path)
           (Word2vec.Serialize.to_string (Word2vec.Sgns.heap_of_view view))))

let w2v_contained path =
  match Word2vec.Serialize.load_mapped path with
  | Error d -> d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model
  | Ok (view, _) -> (
      match Word2vec.Sgns.predict_view view [ "loop ctx" ] with
      | _ -> false
      | exception Lexkit.Diag.Error d ->
          d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model)

let test_w2v_mapped_corruption () =
  let model = train_w2v () in
  with_temp_file ".w2v" (fun path ->
      Word2vec.Serialize.save model path;
      let full = read_file path in
      let n = String.length full in
      List.iter
        (fun cut ->
          write_file path (String.sub full 0 cut);
          check_bool
            (Printf.sprintf "truncation at %d/%d is contained" cut n)
            true (w2v_contained path))
        [ 19; n / 3; n / 2; n - 1 ];
      List.iter
        (fun i ->
          let b = Bytes.of_string full in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          write_file path (Bytes.to_string b);
          check_bool
            (Printf.sprintf "bit flip at byte %d/%d is contained" i n)
            true (w2v_contained path))
        (List.init 21 (fun i -> i * (n - 1) / 20)))

let test_w2v_mapped_v3_downgrade () =
  let model = train_w2v () in
  with_temp_file ".w2v" (fun path ->
      write_file path (Word2vec.Serialize.to_string_v3 model);
      let view, storage = w2v_load_mapped_exn path in
      check_bool "v3 file downgrades to a heap copy" true
        (match storage with
        | Lexkit.Storage.Heap { note = Some _ } -> true
        | _ -> false);
      check_bool "downgraded view ranks identically" true
        (Word2vec.Sgns.predict model [ "loop ctx" ]
        = Word2vec.Sgns.predict_view view [ "loop ctx" ]))

let suite =
  [
    ( "crf-mapped",
      [
        Alcotest.test_case "load is mapped" `Quick test_crf_mapped_is_mapped;
        Alcotest.test_case "byte-identical predictions" `Quick
          test_crf_byte_identical_predictions;
        Alcotest.test_case "save-map-save bit-exact" `Quick
          test_crf_save_map_save_bit_exact;
        Alcotest.test_case "old formats downgrade" `Quick
          test_crf_no_mmap_for_old_formats;
        Alcotest.test_case "mapped tables read-only" `Quick
          test_itbl_mapped_read_only;
      ] );
    ( "crf-corruption",
      [
        Alcotest.test_case "truncations contained" `Quick
          test_crf_mapped_truncations;
        Alcotest.test_case "bit flips contained" `Quick
          test_crf_mapped_bit_flips;
        Alcotest.test_case "hostile lengths contained" `Quick
          test_crf_mapped_hostile_lengths;
        Alcotest.test_case "short files contained" `Quick
          test_crf_mapped_short_files;
      ] );
    ( "w2v-mapped",
      [
        Alcotest.test_case "byte-identity and round-trip" `Quick
          test_w2v_mapped_byte_identity;
        Alcotest.test_case "corruption contained" `Quick
          test_w2v_mapped_corruption;
        Alcotest.test_case "v3 downgrade" `Quick test_w2v_mapped_v3_downgrade;
      ] );
  ]

let () = Alcotest.run "mmap" suite
