(* Tests for the synthetic corpus: roles, templates, generation,
   rendering (every rendered file must parse with its language's
   front-end), dedup and splits. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_config =
  { Corpus.Gen.default with Corpus.Gen.n_files = 30; seed = 7; dup_fraction = 0.1 }

(* ---------- roles ---------- *)

let test_role_distributions () =
  List.iter
    (fun r ->
      let names = Corpus.Role.names r in
      check_bool
        (Corpus.Role.to_string r ^ " has names")
        true (names <> []);
      List.iter (fun (_, w) -> check_bool "positive weight" true (w > 0)) names)
    Corpus.Role.all

let test_role_pick_determinism () =
  let r1 =
    let rng = Random.State.make [| 5 |] in
    List.init 20 (fun _ -> Corpus.Role.pick_name rng Corpus.Role.Flag)
  in
  let r2 =
    let rng = Random.State.make [| 5 |] in
    List.init 20 (fun _ -> Corpus.Role.pick_name rng Corpus.Role.Flag)
  in
  Alcotest.(check (list string)) "deterministic" r1 r2

let test_role_pick_in_distribution () =
  let rng = Random.State.make [| 6 |] in
  for _ = 1 to 100 do
    let n = Corpus.Role.pick_name rng Corpus.Role.Counter in
    check_bool "sampled name in catalogue" true
      (List.mem n (Corpus.Role.all_names Corpus.Role.Counter))
  done

(* ---------- templates ---------- *)

let test_templates_instantiate () =
  let rng = Random.State.make [| 8 |] in
  List.iter
    (fun (t : Corpus.Templates.t) ->
      let used = Hashtbl.create 8 in
      let alloc role =
        let name =
          let base = Corpus.Role.pick_name rng role in
          if Hashtbl.mem used base then base ^ "2" else base
        in
        Hashtbl.add used name ();
        { Corpus.Ir.v_name = name; v_role = role; v_ty = Corpus.Role.ty role }
      in
      let inst = t.Corpus.Templates.instantiate alloc rng in
      check_bool
        (t.Corpus.Templates.template_name ^ " has statements")
        true
        (inst.Corpus.Templates.stmts <> []))
    Corpus.Templates.all

let test_template_lookup () =
  check_bool "flag-loop exists" true (Corpus.Templates.by_name "flag-loop" <> None);
  check_bool "unknown" true (Corpus.Templates.by_name "nope" = None);
  check_int "16 templates" 16 (List.length Corpus.Templates.all)

(* ---------- generation ---------- *)

let test_generate_deterministic () =
  let f1 = Corpus.Gen.generate small_config in
  let f2 = Corpus.Gen.generate small_config in
  check_bool "same files" true (f1 = f2)

let test_generate_counts () =
  let files = Corpus.Gen.generate small_config in
  (* 30 plus 10% duplicates *)
  check_int "file count" 33 (List.length files);
  List.iter
    (fun (f : Corpus.Ir.file) ->
      check_bool "has functions" true (f.Corpus.Ir.funcs <> []))
    files

let test_unique_var_names_per_func () =
  let files = Corpus.Gen.generate small_config in
  List.iter
    (fun (f : Corpus.Ir.file) ->
      List.iter
        (fun fn ->
          let vars = Corpus.Ir.free_vars_of_func fn in
          let names = List.map (fun v -> v.Corpus.Ir.v_name) vars in
          check_bool "unique names" true
            (List.length names = List.length (List.sort_uniq compare names)))
        f.Corpus.Ir.funcs)
    files

(* ---------- rendering parses in every language ---------- *)

let test_render_js_parses () =
  List.iter
    (fun (name, src) ->
      match Minijs.Parser.parse src with
      | _ -> ()
      | exception Lexkit.Error (m, pos) ->
          Alcotest.failf "%s: %a: %s\n%s" name Lexkit.pp_pos pos m src)
    (Corpus.Gen.generate_sources small_config Corpus.Render.Js)

let test_render_java_parses () =
  List.iter
    (fun (name, src) ->
      match Minijava.Parser.parse src with
      | _ -> ()
      | exception Lexkit.Error (m, pos) ->
          Alcotest.failf "%s: %a: %s\n%s" name Lexkit.pp_pos pos m src)
    (Corpus.Gen.generate_sources small_config Corpus.Render.Java)

let test_render_python_parses () =
  List.iter
    (fun (name, src) ->
      match Minipython.Parser.parse src with
      | _ -> ()
      | exception Lexkit.Error (m, pos) ->
          Alcotest.failf "%s: %a: %s\n%s" name Lexkit.pp_pos pos m src)
    (Corpus.Gen.generate_sources small_config Corpus.Render.Python)

let test_render_csharp_parses () =
  List.iter
    (fun (name, src) ->
      match Minicsharp.Parser.parse src with
      | _ -> ()
      | exception Lexkit.Error (m, pos) ->
          Alcotest.failf "%s: %a: %s\n%s" name Lexkit.pp_pos pos m src)
    (Corpus.Gen.generate_sources small_config Corpus.Render.Csharp)

let test_method_name_casing () =
  Alcotest.(check string) "js camel" "countItems"
    (Corpus.Render.method_name Corpus.Render.Js "count_items");
  Alcotest.(check string) "python snake" "count_items"
    (Corpus.Render.method_name Corpus.Render.Python "count_items");
  Alcotest.(check string) "cs pascal" "CountItems"
    (Corpus.Render.method_name Corpus.Render.Csharp "count_items")

(* ---------- dataset pipeline ---------- *)

let entries_of lang =
  List.map
    (fun (path, source) -> { Corpus.Dataset.path; source })
    (Corpus.Gen.generate_sources small_config lang)

let test_dedup () =
  let entries = entries_of Corpus.Render.Js in
  let deduped = Corpus.Dataset.dedup entries in
  (* the generator added 3 verbatim duplicates *)
  check_int "duplicates removed" (List.length entries - 3) (List.length deduped);
  check_bool "idempotent" true
    (List.length (Corpus.Dataset.dedup deduped) = List.length deduped)

let test_split () =
  let entries = Corpus.Dataset.dedup (entries_of Corpus.Render.Java) in
  let split = Corpus.Dataset.split_corpus ~seed:3 entries in
  let open Corpus.Dataset in
  check_int "total preserved"
    (List.length entries)
    (List.length split.train + List.length split.valid + List.length split.test);
  (* disjoint *)
  let paths xs = List.map (fun e -> e.path) xs in
  let inter a b = List.filter (fun x -> List.mem x b) a in
  check_int "train/test disjoint" 0
    (List.length (inter (paths split.train) (paths split.test)));
  check_int "train/valid disjoint" 0
    (List.length (inter (paths split.train) (paths split.valid)));
  (* deterministic *)
  let split2 = Corpus.Dataset.split_corpus ~seed:3 entries in
  check_bool "same split" true (paths split.train = paths split2.train)

let test_split_edge_cases () =
  let open Corpus.Dataset in
  let mk n = List.init n (fun i -> { path = string_of_int i; source = "" }) in
  let partitions ?valid_frac ?test_frac n =
    let s = split_corpus ?valid_frac ?test_frac ~seed:1 (mk n) in
    check_int
      (Printf.sprintf "n=%d partitions exactly" n)
      n
      (List.length s.train + List.length s.valid + List.length s.test);
    s
  in
  (* empty and tiny corpora: everything lands in train, nothing raises *)
  List.iter
    (fun n ->
      let s = partitions n in
      check_int "tiny corpus trains on everything" n (List.length s.train))
    [ 0; 1; 2; 3 ];
  (* fractions summing past 1 must clamp, not feed Array.sub a negative
     length *)
  let s = partitions ~valid_frac:0.9 ~test_frac:0.9 10 in
  check_int "over-committed: valid clamps first" 9 (List.length s.valid);
  check_int "over-committed: test gets the rest" 1 (List.length s.test);
  check_int "over-committed: train empty" 0 (List.length s.train);
  ignore (partitions ~valid_frac:1.0 ~test_frac:1.0 7);
  ignore (partitions ~valid_frac:5.0 ~test_frac:5.0 7);
  (* rounding truncates: 10% of 9 files is 0 validation files *)
  let s = partitions 9 in
  check_int "frac rounding truncates" 0 (List.length s.valid);
  check_int "test still carved out" 1 (List.length s.test);
  (* invalid fractions are rejected up front *)
  List.iter
    (fun (vf, tf) ->
      match split_corpus ~valid_frac:vf ~test_frac:tf ~seed:1 (mk 5) with
      | _ -> Alcotest.failf "accepted valid_frac=%f test_frac=%f" vf tf
      | exception Invalid_argument _ -> ())
    [ (-0.1, 0.2); (0.1, -0.2); (Float.nan, 0.2); (0.1, Float.nan) ]

let test_stats () =
  let entries = entries_of Corpus.Render.Python in
  let s = Corpus.Dataset.stats entries in
  check_int "files" (List.length entries) s.Corpus.Dataset.files;
  check_bool "bytes positive" true (s.Corpus.Dataset.bytes > 0)

let test_md5 () =
  Alcotest.(check string) "stable digest"
    (Corpus.Dataset.md5 "hello") (Corpus.Dataset.md5 "hello");
  check_bool "distinct" true
    (Corpus.Dataset.md5 "a" <> Corpus.Dataset.md5 "b")

let suite =
  [
    ( "roles",
      [
        Alcotest.test_case "distributions well-formed" `Quick test_role_distributions;
        Alcotest.test_case "pick deterministic" `Quick test_role_pick_determinism;
        Alcotest.test_case "pick in catalogue" `Quick test_role_pick_in_distribution;
      ] );
    ( "templates",
      [
        Alcotest.test_case "all instantiate" `Quick test_templates_instantiate;
        Alcotest.test_case "lookup" `Quick test_template_lookup;
      ] );
    ( "generation",
      [
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "counts" `Quick test_generate_counts;
        Alcotest.test_case "unique var names" `Quick test_unique_var_names_per_func;
      ] );
    ( "rendering",
      [
        Alcotest.test_case "JS parses" `Quick test_render_js_parses;
        Alcotest.test_case "Java parses" `Quick test_render_java_parses;
        Alcotest.test_case "Python parses" `Quick test_render_python_parses;
        Alcotest.test_case "C# parses" `Quick test_render_csharp_parses;
        Alcotest.test_case "method-name casing" `Quick test_method_name_casing;
      ] );
    ( "dataset",
      [
        Alcotest.test_case "dedup" `Quick test_dedup;
        Alcotest.test_case "split" `Quick test_split;
        Alcotest.test_case "split edge cases" `Quick test_split_edge_cases;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "md5" `Quick test_md5;
      ] );
  ]

let () = Alcotest.run "corpus" suite
