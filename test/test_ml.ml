(* Tests for the learning engines: CRF (graphs, model, candidates,
   inference, training) and word2vec (vocab, SGNS, prediction). These
   use small synthetic problems with known structure so convergence is
   checkable deterministically. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- CRF graph basics ---------- *)

let mk_node id gold kind = { Crf.Graph.id; gold; kind }

let tiny_graph () =
  Crf.Graph.make
    ~nodes:
      [
        mk_node 0 "done" `Unknown;
        mk_node 1 "true" `Known;
        mk_node 2 "someCondition" `Known;
      ]
    ~factors:
      [
        Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"assign";
        Crf.Graph.pairwise ~a:0 ~b:2 ~rel:"cond";
        Crf.Graph.unary ~n:0 ~rel:"while-loop";
      ]

let test_graph_basics () =
  let g = tiny_graph () in
  check_int "unknowns" 1 (Crf.Graph.num_unknown g);
  Alcotest.(check (list int)) "unknown ids" [ 0 ] (Crf.Graph.unknown_ids g);
  let gold = Crf.Graph.gold_assignment g in
  check_string "gold" "done" gold.(0);
  let init = Crf.Graph.initial_assignment g ~default:"?" in
  check_string "unknown default" "?" init.(0);
  check_string "known fixed" "true" init.(1);
  let touching = Crf.Graph.touching g in
  check_int "node 0 touches 3" 3 (List.length touching.(0));
  check_int "node 1 touches 1" 1 (List.length touching.(1))

let test_graph_validation () =
  (try
     ignore (Crf.Graph.make ~nodes:[ mk_node 1 "x" `Known ] ~factors:[]);
     Alcotest.fail "expected id validation error"
   with Invalid_argument _ -> ());
  try
    ignore
      (Crf.Graph.make
         ~nodes:[ mk_node 0 "x" `Known ]
         ~factors:[ Crf.Graph.pairwise ~a:0 ~b:5 ~rel:"r" ]);
    Alcotest.fail "expected range error"
  with Invalid_argument _ -> ()

let test_model_scoring () =
  let m = Crf.Model.create () in
  Crf.Model.add m (Crf.Model.pairwise_feat ~la:"done" ~rel:"assign" ~lb:"true") 2.0;
  Crf.Model.add m (Crf.Model.unary_feat ~l:"done" ~rel:"while-loop") 1.0;
  Crf.Model.add m (Crf.Model.bias_feat ~l:"done") 0.5;
  let g = tiny_graph () in
  let gold = Crf.Graph.gold_assignment g in
  Alcotest.(check (float 1e-9)) "score" 3.5 (Crf.Model.score m g gold);
  let other = Array.copy gold in
  other.(0) <- "count";
  Alcotest.(check (float 1e-9)) "other score" 0. (Crf.Model.score m g other)

(* ---------- a small synthetic naming world ----------

   Three roles with distinct relations:
   - "flag" nodes: unary rel "loop!"; neighbor "true" via rel "assign"
   - "count" nodes: neighbor "0" via rel "init"; unary rel "incr"
   - "index" nodes: neighbor "length" via rel "bound"
   Names are drawn from per-role distributions so the learner has both
   signal and ambiguity. *)

let synth_graphs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      let role = Random.State.int rng 3 in
      match role with
      | 0 ->
          Crf.Graph.make
            ~nodes:
              [
                mk_node 0 (pick [ "done"; "done"; "finished"; "stop" ]) `Unknown;
                mk_node 1 "true" `Known;
              ]
            ~factors:
              [
                Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"assign";
                Crf.Graph.unary ~n:0 ~rel:"loop!";
              ]
      | 1 ->
          Crf.Graph.make
            ~nodes:
              [
                mk_node 0 (pick [ "count"; "count"; "total" ]) `Unknown;
                mk_node 1 "0" `Known;
              ]
            ~factors:
              [
                Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"init";
                Crf.Graph.unary ~n:0 ~rel:"incr";
              ]
      | _ ->
          Crf.Graph.make
            ~nodes:
              [
                mk_node 0 (pick [ "i"; "i"; "index" ]) `Unknown;
                mk_node 1 "length" `Known;
              ]
            ~factors:[ Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"bound" ])

let test_candidates () =
  let graphs = synth_graphs ~n:200 ~seed:1 in
  let cands = Crf.Candidates.build graphs in
  check_bool "several labels" true (Crf.Candidates.num_labels cands >= 6);
  let g = List.hd (synth_graphs ~n:1 ~seed:99) in
  let touching = Crf.Graph.touching g in
  let cs = Crf.Candidates.for_node cands g touching.(0) 0 ~max:10 in
  check_bool "nonempty" true (cs <> []);
  check_bool "within max" true (List.length cs <= 10);
  check_bool "no dups" true
    (List.length cs = List.length (List.sort_uniq String.compare cs));
  (* global top is by frequency *)
  let top = Crf.Candidates.global_top cands 3 in
  check_int "three tops" 3 (List.length top)

(* The clean synthetic worlds have no sparsity, so they are trained
   without the generative initialization (which exists to stabilize
   sparse path features; on pure-noise residuals the perceptron on top
   of it oscillates between synonyms). *)
let clean_config =
  { Crf.Train.default_config with Crf.Train.init = Crf.Fast.No_init }

let test_training_learns_roles () =
  let train_graphs = synth_graphs ~n:400 ~seed:2 in
  let model = Crf.Train.train ~config:clean_config train_graphs in
  let test_graphs = synth_graphs ~n:150 ~seed:3 in
  let acc = Crf.Train.accuracy model test_graphs in
  (* The Bayes rate is about 2/3 (name synonym noise); random ~1/8. *)
  check_bool (Printf.sprintf "accuracy %.2f > 0.55" acc) true (acc > 0.55)

let test_training_beats_nopath () =
  (* A world where the *relation* is the only signal: both roles share
     the same known neighbor, so the no-path baseline (single shared
     rel, i.e. bag-of-near-identifiers) cannot separate them. *)
  let rel_world ~n ~seed =
    let rng = Random.State.make [| seed |] in
    let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
    List.init n (fun _ ->
        let flag = Random.State.bool rng in
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0
                (if flag then pick [ "done"; "done"; "stop" ]
                 else pick [ "count"; "count"; "total" ])
                `Unknown;
              mk_node 1 "value" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1
                ~rel:(if flag then "loop-guard" else "incr");
            ])
  in
  let hide g =
    {
      g with
      Crf.Graph.factors =
        List.map
          (function
            | Crf.Graph.Pairwise { a; b; mult; _ } ->
                Crf.Graph.Pairwise { a; b; rel = "*"; mult }
            | Crf.Graph.Unary { n; mult; _ } -> Crf.Graph.Unary { n; rel = "*"; mult })
          g.Crf.Graph.factors;
    }
  in
  let train_graphs = rel_world ~n:400 ~seed:2 in
  let test_graphs = rel_world ~n:150 ~seed:3 in
  let full =
    Crf.Train.accuracy (Crf.Train.train ~config:clean_config train_graphs) test_graphs
  in
  let blind =
    Crf.Train.accuracy
      (Crf.Train.train ~config:clean_config (List.map hide train_graphs))
      (List.map hide test_graphs)
  in
  check_bool
    (Printf.sprintf "full %.2f > no-path %.2f + 0.15" full blind)
    true
    (full > blind +. 0.15)

let test_top_k () =
  let model = Crf.Train.train ~config:clean_config (synth_graphs ~n:400 ~seed:2) in
  let g = List.hd (synth_graphs ~n:1 ~seed:4) in
  let suggestions = Crf.Train.top_k model g ~node:0 ~k:5 in
  check_bool "at most 5" true (List.length suggestions <= 5);
  check_bool "nonempty" true (suggestions <> []);
  (* sorted descending *)
  let scores = List.map snd suggestions in
  check_bool "sorted" true
    (List.sort (fun a b -> Float.compare b a) scores = scores)

let test_inference_improves_score () =
  let graphs = synth_graphs ~n:200 ~seed:5 in
  let model = Crf.Train.train ~config:clean_config graphs in
  List.iter
    (fun g ->
      let pred = Crf.Train.predict model g in
      (* MAP score at least as good as the initial greedy default. *)
      let default =
        match Crf.Candidates.global_top (Lazy.force model.Crf.Train.candidates) 1 with
        | [ l ] -> l
        | _ -> "?"
      in
      let init = Crf.Graph.initial_assignment g ~default in
      check_bool "map >= init" true
        (Crf.Model.score (Lazy.force model.Crf.Train.weights) g pred
        >= Crf.Model.score (Lazy.force model.Crf.Train.weights) g init -. 1e-9))
    (synth_graphs ~n:20 ~seed:6)

(* ---------- property tests for CRF ---------- *)

let gen_graph =
  let open QCheck2.Gen in
  let* n_unknown = int_range 1 4 in
  let* n_known = int_range 1 4 in
  let n = n_unknown + n_known in
  let* rels = list_size (int_range 1 12) (int_range 0 5) in
  let labels = [| "a"; "b"; "c"; "d" |] in
  let* lbl_idx = list_repeat n (int_range 0 3) in
  let nodes =
    List.mapi
      (fun i li ->
        mk_node i labels.(li) (if i < n_unknown then `Unknown else `Known))
      lbl_idx
  in
  let+ endpoints = list_repeat (List.length rels) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
  let factors =
    List.map2
      (fun r (a, b) ->
        if a = b then Crf.Graph.unary ~n:a ~rel:("r" ^ string_of_int r)
        else Crf.Graph.pairwise ~a ~b ~rel:("r" ^ string_of_int r))
      rels endpoints
  in
  Crf.Graph.make ~nodes ~factors

let prop_predict_respects_known =
  QCheck2.Test.make ~name:"crf: prediction never changes known labels"
    ~count:100 (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5) gen_graph)
    (fun graphs ->
      let model = Crf.Train.train ~config:{ Crf.Train.default_config with iterations = 2 } graphs in
      List.for_all
        (fun g ->
          let pred = Crf.Train.predict model g in
          Array.for_all
            (fun (n : Crf.Graph.node) ->
              n.Crf.Graph.kind = `Unknown
              || String.equal pred.(n.Crf.Graph.id) n.Crf.Graph.gold)
            g.Crf.Graph.nodes)
        graphs)

let prop_training_deterministic =
  QCheck2.Test.make ~name:"crf: training is deterministic given seed" ~count:20
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 5) gen_graph)
    (fun graphs ->
      let m1 = Crf.Train.train graphs and m2 = Crf.Train.train graphs in
      List.for_all
        (fun g ->
          Crf.Train.predict m1 g = Crf.Train.predict m2 g)
        graphs)

(* ---------- reference inference engine (string-level) ----------

   [Crf.Inference] is the documented reference implementation of ICM
   over the public string-keyed model; the production path is
   [Crf.Fast]. Both must agree on small problems. *)

let test_reference_inference () =
  let graphs = synth_graphs ~n:300 ~seed:21 in
  let cands = Crf.Candidates.build graphs in
  let m = Crf.Model.create () in
  (* hand-crafted weights: the role worlds of synth_graphs *)
  Crf.Model.add m (Crf.Model.pairwise_feat ~la:"done" ~rel:"assign" ~lb:"true") 2.;
  Crf.Model.add m (Crf.Model.pairwise_feat ~la:"count" ~rel:"init" ~lb:"0") 2.;
  Crf.Model.add m (Crf.Model.pairwise_feat ~la:"i" ~rel:"bound" ~lb:"length") 2.;
  List.iter
    (fun g ->
      let a = Crf.Inference.map_assignment m cands g in
      (* knowns untouched *)
      Array.iter
        (fun (nd : Crf.Graph.node) ->
          if nd.Crf.Graph.kind = `Known then
            check_string "known fixed" nd.Crf.Graph.gold a.(nd.Crf.Graph.id))
        g.Crf.Graph.nodes;
      (* role recovered under the crafted weights *)
      let gold = Crf.Graph.gold_assignment g in
      let expected =
        match gold.(1) with
        | "true" -> "done"
        | "0" -> "count"
        | _ -> "i"
      in
      check_string "role recovered" expected a.(0))
    (synth_graphs ~n:30 ~seed:22)

let test_reference_top_k_sorted () =
  let graphs = synth_graphs ~n:200 ~seed:23 in
  let cands = Crf.Candidates.build graphs in
  let m = Crf.Model.create () in
  Crf.Model.add m (Crf.Model.bias_feat ~l:"done") 1.0;
  let g = List.hd (synth_graphs ~n:1 ~seed:24) in
  let assignment = Crf.Graph.gold_assignment g in
  let top = Crf.Inference.top_k m cands g assignment ~node:0 ~k:4 in
  check_bool "at most 4" true (List.length top <= 4);
  let scores = List.map snd top in
  check_bool "sorted" true (List.sort (fun a b -> Float.compare b a) scores = scores)

(* ---------- fast engine internals ---------- *)

let test_interner () =
  let t = Crf.Symbols.create () in
  let a = Crf.Symbols.label t "alpha" in
  let b = Crf.Symbols.label t "beta" in
  check_int "distinct ids" 1 (abs (a - b));
  check_int "stable" a (Crf.Symbols.label t "alpha");
  check_string "reverse" "alpha" (Crf.Symbols.label_string t a);
  check_int "size" 2 (Crf.Symbols.num_labels t);
  (* growth beyond the initial capacity *)
  for i = 0 to 600 do
    ignore (Crf.Symbols.label t (string_of_int i))
  done;
  check_int "grown" 603 (Crf.Symbols.num_labels t);
  check_string "still stable" "beta" (Crf.Symbols.label_string t b);
  (* relation ids live in their own space *)
  check_int "rel space" 0 (Crf.Symbols.rel t "alpha")

let test_export_weights () =
  (* The exported string-keyed weights must rank the gold label first
     in a clamped-neighbors local scoring, matching the fast engine. *)
  let graphs = synth_graphs ~n:300 ~seed:12 in
  let model = Crf.Train.train ~config:clean_config graphs in
  check_bool "weights nonempty" true (Crf.Model.size (Lazy.force model.Crf.Train.weights) > 0);
  let correct = ref 0 and total = ref 0 in
  List.iter
    (fun g ->
      let touching = Crf.Graph.touching g in
      let gold = Crf.Graph.gold_assignment g in
      List.iter
        (fun n ->
          incr total;
          let cs =
            Crf.Candidates.for_node (Lazy.force model.Crf.Train.candidates) g touching.(n) n
              ~max:10
          in
          let best =
            List.fold_left
              (fun (bl, bs) l ->
                let s =
                  Crf.Model.node_score (Lazy.force model.Crf.Train.weights) g touching.(n) n
                    gold ~label:l
                in
                if s > bs then (l, s) else (bl, bs))
              ("", neg_infinity) cs
          in
          if String.equal (fst best) gold.(n) then incr correct)
        (Crf.Graph.unknown_ids g))
      (synth_graphs ~n:50 ~seed:13);
  check_bool
    (Printf.sprintf "exported weights discriminate (%d/%d)" !correct !total)
    true
    (float_of_int !correct /. float_of_int !total > 0.55)

let test_fast_roundtrip_encode () =
  let g = tiny_graph () in
  let m = Crf.Fast.create () in
  let eg = Crf.Fast.encode m g in
  check_bool "graph preserved" true (Crf.Fast.graph_of eg == g)

(* ---------- word2vec ---------- *)

let test_vocab () =
  let v = Word2vec.Vocab.build [ "a"; "b"; "a"; "c"; "a"; "b" ] in
  check_int "size" 3 (Word2vec.Vocab.size v);
  check_string "most frequent first" "a" (Word2vec.Vocab.word v 0);
  Alcotest.(check (option int)) "id of b" (Some 1) (Word2vec.Vocab.id v "b");
  check_int "total" 6 (Word2vec.Vocab.total v);
  let v2 = Word2vec.Vocab.build ~min_count:2 [ "a"; "b"; "a"; "c" ] in
  check_int "min_count filters" 1 (Word2vec.Vocab.size v2)

let test_sigmoid_dot () =
  Alcotest.(check (float 1e-9)) "sigmoid 0" 0.5 (Word2vec.Sgns.sigmoid 0.);
  check_bool "sigmoid large" true (Word2vec.Sgns.sigmoid 40. = 1.);
  Alcotest.(check (float 1e-9)) "dot" 11.
    (Word2vec.Sgns.dot [| 1.; 2. |] [| 3.; 4. |])

(* Synthetic SGNS task: words of two classes with disjoint contexts. *)
let sgns_pairs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        (pick [ "done"; "finished" ], pick [ "loop-ctx"; "assign-true"; "while" ])
      else (pick [ "count"; "total" ], pick [ "init-zero"; "incr"; "plusplus" ]))

let test_sgns_learns_classes () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with epochs = 20; seed = 7 }
      (sgns_pairs ~n:2000 ~seed:8)
  in
  (* Predicting from flag contexts must rank a flag word first. *)
  let ranked = Word2vec.Sgns.predict model [ "loop-ctx"; "assign-true" ] in
  let top = fst (List.hd ranked) in
  check_bool ("flag ctx -> flag word, got " ^ top) true
    (List.mem top [ "done"; "finished" ]);
  let ranked2 = Word2vec.Sgns.predict model [ "init-zero"; "incr" ] in
  let top2 = fst (List.hd ranked2) in
  check_bool ("count ctx -> count word, got " ^ top2) true
    (List.mem top2 [ "count"; "total" ])

let test_sgns_similarity () =
  let model =
    Word2vec.Sgns.train
      ~config:{ Word2vec.Sgns.default_config with epochs = 20; seed = 7 }
      (sgns_pairs ~n:2000 ~seed:8)
  in
  match Word2vec.Sgns.most_similar model "done" ~k:1 with
  | [ (w, _) ] ->
      check_string "done ~ finished" "finished" w
  | _ -> Alcotest.fail "expected one neighbor"

let test_sgns_predict_ignores_unknown_ctx () =
  let model = Word2vec.Sgns.train (sgns_pairs ~n:500 ~seed:8) in
  let r1 = Word2vec.Sgns.predict model [ "loop-ctx" ] in
  let r2 = Word2vec.Sgns.predict model [ "loop-ctx"; "never-seen-ctx" ] in
  check_bool "same ranking" true (List.map fst r1 = List.map fst r2)

let test_sgns_empty () =
  let model = Word2vec.Sgns.train [] in
  check_int "empty vocab" 0 (Word2vec.Vocab.size model.Word2vec.Sgns.words);
  Alcotest.(check (list (pair string (float 0.)))) "no predictions" []
    (Word2vec.Sgns.predict model [ "x" ])

let prop_sgns_deterministic =
  QCheck2.Test.make ~name:"sgns: deterministic given seed" ~count:5
    (QCheck2.Gen.int_range 0 1000) (fun seed ->
      let pairs = sgns_pairs ~n:200 ~seed in
      let m1 = Word2vec.Sgns.train pairs and m2 = Word2vec.Sgns.train pairs in
      List.map fst (Word2vec.Sgns.predict m1 [ "loop-ctx" ])
      = List.map fst (Word2vec.Sgns.predict m2 [ "loop-ctx" ]))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "crf-graph",
      [
        Alcotest.test_case "basics" `Quick test_graph_basics;
        Alcotest.test_case "validation" `Quick test_graph_validation;
        Alcotest.test_case "model scoring" `Quick test_model_scoring;
      ] );
    ( "crf-learning",
      [
        Alcotest.test_case "candidate generation" `Quick test_candidates;
        Alcotest.test_case "learns synthetic roles" `Quick test_training_learns_roles;
        Alcotest.test_case "paths beat no-path" `Quick test_training_beats_nopath;
        Alcotest.test_case "top-k suggestions" `Quick test_top_k;
        Alcotest.test_case "MAP improves over init" `Quick test_inference_improves_score;
        Alcotest.test_case "reference ICM" `Quick test_reference_inference;
        Alcotest.test_case "reference top-k" `Quick test_reference_top_k_sorted;
        Alcotest.test_case "interner" `Quick test_interner;
        Alcotest.test_case "exported weights" `Quick test_export_weights;
        Alcotest.test_case "fast encode round-trip" `Quick test_fast_roundtrip_encode;
      ]
      @ qcheck [ prop_predict_respects_known; prop_training_deterministic ] );
    ( "word2vec",
      [
        Alcotest.test_case "vocab" `Quick test_vocab;
        Alcotest.test_case "sigmoid and dot" `Quick test_sigmoid_dot;
        Alcotest.test_case "learns context classes" `Quick test_sgns_learns_classes;
        Alcotest.test_case "semantic similarity" `Quick test_sgns_similarity;
        Alcotest.test_case "unknown contexts ignored" `Quick
          test_sgns_predict_ignores_unknown_ctx;
        Alcotest.test_case "empty training" `Quick test_sgns_empty;
      ]
      @ qcheck [ prop_sgns_deterministic ] );
  ]

let () = Alcotest.run "ml" suite
