(* Unit + property tests for the generic AST and indexed view. *)

open Ast

(* The paper's Fig. 5: [var a, b, c, d;] — a Var node with four VarDef
   children, each wrapping a SymbolVar terminal. *)
let fig5 =
  Tree.nt "Var"
    (List.map
       (fun (i, n) -> Tree.nt "VarDef" [ Tree.var i "SymbolVar" n ])
       [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ])

(* The paper's Fig. 1: [while (!d) { if (someCondition()) { d = true; } }] *)
let fig1 =
  Tree.nt "While"
    [
      Tree.nt "UnaryPrefix!" [ Tree.var 0 "SymbolRef" "d" ];
      Tree.nt "If"
        [
          Tree.nt "Call" [ Tree.term ~sort:Tree.Name "SymbolRef" "someCondition" ];
          Tree.nt "Assign="
            [ Tree.var 0 "SymbolRef" "d"; Tree.term ~sort:Tree.Lit "True" "true" ];
        ];
    ]

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_size () =
  check_int "fig5 size" 9 (Tree.size fig5);
  check_int "fig5 leaves" 4 (Tree.num_leaves fig5);
  check_int "fig1 size" 9 (Tree.size fig1);
  check_int "fig1 leaves" 4 (Tree.num_leaves fig1)

let test_leaves_order () =
  let vs = List.filter_map Tree.value (Tree.leaves fig5) in
  Alcotest.(check (list string)) "left-to-right" [ "a"; "b"; "c"; "d" ] vs

let test_label_value () =
  check_string "root label" "Var" (Tree.label fig5);
  check_bool "root not terminal" false (Tree.is_terminal fig5);
  let leaf = List.hd (Tree.leaves fig5) in
  check_bool "leaf terminal" true (Tree.is_terminal leaf);
  Alcotest.(check (option string)) "leaf value" (Some "a") (Tree.value leaf)

let test_map_terminals () =
  let upper =
    Tree.map_terminals
      (fun ~label ~value ~sort ->
        ignore sort;
        Tree.term label (String.uppercase_ascii value))
      fig5
  in
  let vs = List.filter_map Tree.value (Tree.leaves upper) in
  Alcotest.(check (list string)) "renamed" [ "A"; "B"; "C"; "D" ] vs;
  check_int "size preserved" (Tree.size fig5) (Tree.size upper)

let test_equal () =
  check_bool "reflexive" true (Tree.equal fig1 fig1);
  check_bool "distinct" false (Tree.equal fig1 fig5)

let test_index_basic () =
  let idx = Index.build fig5 in
  check_int "size" 9 (Index.size idx);
  check_int "root" 0 (Index.root idx);
  check_string "root label" "Var" (Index.label idx 0);
  check_int "root parent" (-1) (Index.parent idx 0);
  check_int "root depth" 0 (Index.depth idx 0);
  check_int "num leaves" 4 (Array.length (Index.leaves idx))

let test_index_parent_child () =
  let idx = Index.build fig5 in
  (* Every non-root node is among its parent's children at its rank. *)
  for i = 1 to Index.size idx - 1 do
    let p = Index.parent idx i in
    let cs = Index.children idx p in
    check_int "child slot" i cs.(Index.child_rank idx i);
    check_int "depth" (Index.depth idx p + 1) (Index.depth idx i)
  done

let test_lca () =
  let idx = Index.build fig5 in
  let leaves = Index.leaves idx in
  let a = leaves.(0) and d = leaves.(3) in
  check_int "lca a d = root" 0 (Index.lca idx a d);
  check_int "lca a a = a" a (Index.lca idx a a);
  check_int "lca a parent" (Index.parent idx a) (Index.lca idx a (Index.parent idx a))

let test_width_fig5 () =
  (* Paper: the a..d path has length 4 and width 3. *)
  let idx = Index.build fig5 in
  let leaves = Index.leaves idx in
  let a = leaves.(0) and d = leaves.(3) in
  let l = Index.lca idx a d in
  let len = Index.depth idx a + Index.depth idx d - (2 * Index.depth idx l) in
  check_int "fig5 length" 4 len;
  check_int "fig5 width" 3 (Index.width_between idx ~lca:l a d);
  let b = leaves.(1) in
  check_int "a-b width" 1 (Index.width_between idx ~lca:l a b)

let test_width_semi () =
  let idx = Index.build fig5 in
  let a = (Index.leaves idx).(0) in
  check_int "semi width is 0" 0 (Index.width_between idx ~lca:0 a 0)

let test_path_up () =
  let idx = Index.build fig5 in
  let a = (Index.leaves idx).(0) in
  let chain = Index.path_up idx a ~stop:0 in
  check_int "chain length" 3 (List.length chain);
  check_int "chain head" a (List.hd chain);
  check_int "ancestors" 2 (List.length (Index.ancestors idx a))

let test_lookup () =
  let idx = Index.build fig5 in
  check_int "VarDef count" 4 (List.length (Index.nodes_with_label idx "VarDef"));
  check_int "value d" 1 (List.length (Index.terminals_with_value idx "d"));
  let idx1 = Index.build fig1 in
  check_int "two ds" 2 (List.length (Index.terminals_with_value idx1 "d"))

let test_lookup_order () =
  (* Precomputed lookup tables must keep the historical ordering:
     ascending node id (= preorder). *)
  let idx = Index.build fig5 in
  let ids = Index.nodes_with_label idx "VarDef" in
  check_bool "ascending ids" true (List.sort compare ids = ids);
  check_int "four VarDefs" 4 (List.length ids);
  let idx1 = Index.build fig1 in
  let ds = Index.terminals_with_value idx1 "d" in
  check_bool "terminal ids ascending" true (List.sort compare ds = ds);
  Alcotest.(check (list int)) "missing label" []
    (Index.nodes_with_label idx "NoSuchLabel");
  Alcotest.(check (list int)) "missing value" []
    (Index.terminals_with_value idx "nope")

let test_label_interning () =
  let idx = Index.build fig5 in
  check_int "three distinct labels" 3 (Index.num_label_ids idx);
  (* Nodes sharing a label share the id and the physical string. *)
  let defs = Index.nodes_with_label idx "VarDef" in
  let first = List.hd defs in
  List.iter
    (fun i ->
      check_int "same label id" (Index.label_id idx first) (Index.label_id idx i);
      check_bool "same physical string" true
        (Index.label idx first == Index.label idx i))
    defs;
  List.iter
    (fun i ->
      check_string "label_of_id roundtrip" (Index.label idx i)
        (Index.label_of_id idx (Index.label_id idx i)))
    (List.init (Index.size idx) Fun.id)

let test_dot () =
  let idx = Index.build fig1 in
  let dot = Dot.to_dot idx in
  check_bool "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* one node line per AST node *)
  let count_sub s sub =
    let n = ref 0 in
    let len = String.length sub in
    for i = 0 to String.length s - len do
      if String.sub s i len = sub then incr n
    done;
    !n
  in
  check_int "edges" (Index.size idx - 1) (count_sub dot " -> ")

(* Random tree generator for property tests. *)
let gen_tree =
  let open QCheck2.Gen in
  sized_size (int_range 1 40) @@ fix (fun self n ->
      if n <= 1 then
        map2
          (fun l v -> Tree.term ("T" ^ string_of_int l) ("v" ^ string_of_int v))
          (int_range 0 5) (int_range 0 9)
      else
        let* k = int_range 1 (min 4 n) in
        let* lbl = int_range 0 5 in
        let+ cs = list_repeat k (self (n / k)) in
        Tree.nt ("N" ^ string_of_int lbl) cs)

let prop_index_consistent =
  QCheck2.Test.make ~name:"index: preorder parents and depths" ~count:200
    gen_tree (fun t ->
      let idx = Index.build t in
      let ok = ref (Index.size idx = Tree.size t) in
      for i = 1 to Index.size idx - 1 do
        let p = Index.parent idx i in
        ok := !ok && p >= 0 && p < i;
        ok := !ok && Index.depth idx i = Index.depth idx p + 1
      done;
      !ok)

let prop_leaves_match =
  QCheck2.Test.make ~name:"index: leaves match tree leaves" ~count:200 gen_tree
    (fun t ->
      let idx = Index.build t in
      let tree_vals = List.filter_map Tree.value (Tree.leaves t) in
      let idx_vals =
        Array.to_list (Index.leaves idx)
        |> List.filter_map (Index.value idx)
      in
      tree_vals = idx_vals)

let prop_lca_is_ancestor =
  QCheck2.Test.make ~name:"index: lca is a common ancestor" ~count:200 gen_tree
    (fun t ->
      let idx = Index.build t in
      let leaves = Index.leaves idx in
      let n = Array.length leaves in
      if n < 2 then true
      else begin
        let ok = ref true in
        for i = 0 to min 5 (n - 1) do
          for j = i to min 5 (n - 1) do
            let a = leaves.(i) and b = leaves.(j) in
            let l = Index.lca idx a b in
            let is_anc x =
              x = l || List.mem l (Index.ancestors idx x)
            in
            ok := !ok && is_anc a && is_anc b
          done
        done;
        !ok
      end)

(* Naive references for the O(1)/O(log) index structures. *)
let naive_lca idx a b =
  let a = ref a and b = ref b in
  while Index.depth idx !a > Index.depth idx !b do
    a := Index.parent idx !a
  done;
  while Index.depth idx !b > Index.depth idx !a do
    b := Index.parent idx !b
  done;
  while !a <> !b do
    a := Index.parent idx !a;
    b := Index.parent idx !b
  done;
  !a

let prop_lca_matches_naive =
  QCheck2.Test.make ~name:"index: RMQ lca = parent-walk lca (all pairs)"
    ~count:200 gen_tree (fun t ->
      let idx = Index.build t in
      let n = Index.size idx in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          ok := !ok && Index.lca idx a b = naive_lca idx a b
        done
      done;
      !ok)

let prop_ancestor_at_depth =
  QCheck2.Test.make ~name:"index: ancestor_at_depth = chain walk" ~count:200
    gen_tree (fun t ->
      let idx = Index.build t in
      let ok = ref true in
      for v = 0 to Index.size idx - 1 do
        let chain = v :: List.map Fun.id (Index.ancestors idx v) in
        List.iter
          (fun u ->
            ok :=
              !ok && Index.ancestor_at_depth idx v (Index.depth idx u) = u)
          chain
      done;
      !ok)

let prop_lookup_matches_scan =
  QCheck2.Test.make ~name:"index: lookup tables = linear scan" ~count:200
    gen_tree (fun t ->
      let idx = Index.build t in
      let n = Index.size idx in
      let scan pred = List.filter pred (List.init n Fun.id) in
      let labels =
        List.sort_uniq String.compare
          (List.init n (fun i -> Index.label idx i))
      in
      List.for_all
        (fun lbl ->
          Index.nodes_with_label idx lbl
          = scan (fun i -> String.equal (Index.label idx i) lbl))
        labels
      && List.for_all
           (fun i ->
             match Index.value idx i with
             | None -> true
             | Some v ->
                 Index.terminals_with_value idx v
                 = scan (fun j -> Index.value idx j = Some v))
           (List.init n Fun.id))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "tree",
      [
        Alcotest.test_case "size and leaf counts" `Quick test_size;
        Alcotest.test_case "leaves left-to-right" `Quick test_leaves_order;
        Alcotest.test_case "label/value accessors" `Quick test_label_value;
        Alcotest.test_case "map_terminals" `Quick test_map_terminals;
        Alcotest.test_case "equality" `Quick test_equal;
      ] );
    ( "index",
      [
        Alcotest.test_case "basic accessors" `Quick test_index_basic;
        Alcotest.test_case "parent/child consistency" `Quick test_index_parent_child;
        Alcotest.test_case "lca" `Quick test_lca;
        Alcotest.test_case "fig5 length and width" `Quick test_width_fig5;
        Alcotest.test_case "semi-path width" `Quick test_width_semi;
        Alcotest.test_case "path_up and ancestors" `Quick test_path_up;
        Alcotest.test_case "label/value lookup" `Quick test_lookup;
        Alcotest.test_case "lookup table ordering" `Quick test_lookup_order;
        Alcotest.test_case "label interning" `Quick test_label_interning;
        Alcotest.test_case "dot export" `Quick test_dot;
      ]
      @ qcheck
          [
            prop_index_consistent;
            prop_leaves_match;
            prop_lca_is_ancestor;
            prop_lca_matches_naive;
            prop_ancestor_at_depth;
            prop_lookup_matches_scan;
          ]
    );
  ]

let () = Alcotest.run "ast" suite
