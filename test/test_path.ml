(* Tests for AST paths, path-contexts, extraction, abstraction and
   downsampling. *)

open Astpath

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let fig1 =
  Ast.Tree.(
    nt "While"
      [
        nt "UnaryPrefix!" [ var 0 "SymbolRef" "d" ];
        nt "If"
          [
            nt "Call" [ term ~sort:Name "SymbolRef" "someCondition" ];
            nt "Assign="
              [ var 0 "SymbolRef" "d"; term ~sort:Lit "True" "true" ];
          ];
      ])

let fig4 =
  (* var item = array[i]; — paper Fig. 4 partial AST. *)
  Ast.Tree.(
    nt "VarDef"
      [
        var 0 "SymbolVar" "item";
        nt "Sub" [ var 1 "SymbolRef" "array"; var 2 "SymbolRef" "i" ];
      ])

let mkpath up top down = Path.of_chain ~up ~top ~down

let test_make_valid () =
  let p = mkpath [ "A"; "B" ] "C" [ "D" ] in
  check_int "length" 3 (Path.length p);
  check_string "first" "A" (Path.first p);
  check_string "top" "C" (Path.top p);
  check_string "last" "D" (Path.last p);
  check_int "top index" 2 (Path.top_index p)

let test_make_invalid () =
  Alcotest.check_raises "up after down"
    (Invalid_argument "Path.make: Up after Down") (fun () ->
      ignore
        (Path.make ~nodes:[| "A"; "B"; "C" |] ~dirs:[| Path.Down; Path.Up |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Path.make: |nodes| must be |dirs| + 1") (fun () ->
      ignore (Path.make ~nodes:[| "A" |] ~dirs:[| Path.Up |]))

let test_singleton () =
  let p = Path.make ~nodes:[| "X" |] ~dirs:[||] in
  check_int "zero length" 0 (Path.length p);
  check_string "top" "X" (Path.top p)

let test_to_string () =
  let p = mkpath [ "SymbolRef"; "UnaryPrefix!" ] "While" [ "If"; "Assign="; "SymbolRef" ] in
  check_string "paper notation"
    "SymbolRef\xe2\x86\x91UnaryPrefix!\xe2\x86\x91While\xe2\x86\x93If\xe2\x86\x93Assign=\xe2\x86\x93SymbolRef"
    (Path.to_string p)

let test_reverse () =
  let p = mkpath [ "A" ] "B" [ "C"; "D" ] in
  let r = Path.reverse p in
  check_string "reversed first" "D" (Path.first r);
  check_string "reversed last" "A" (Path.last r);
  check_string "same top" (Path.top p) (Path.top r);
  check_bool "involution" true (Path.equal p (Path.reverse r))

let test_context_fig1 () =
  (* The headline path of the paper:
     SymbolRef ↑ UnaryPrefix! ↑ While ↓ If ↓ Assign= ↓ SymbolRef *)
  let idx = Ast.Index.build fig1 in
  let ds = Ast.Index.terminals_with_value idx "d" in
  check_int "two occurrences" 2 (List.length ds);
  let a = List.nth ds 0 and b = List.nth ds 1 in
  let c = Context.make ~idx ~start_node:a ~end_node:b in
  check_string "paper path I"
    "SymbolRef\xe2\x86\x91UnaryPrefix!\xe2\x86\x91While\xe2\x86\x93If\xe2\x86\x93Assign=\xe2\x86\x93SymbolRef"
    (Path.to_string (Context.path c));
  check_string "start value" "d" (Context.start_value c);
  check_string "end value" "d" (Context.end_value c)

let test_context_fig4 () =
  (* ⟨item, SymbolVar ↑ VarDef ↓ Sub ↓ SymbolRef, array⟩ *)
  let idx = Ast.Index.build fig4 in
  let item = List.hd (Ast.Index.terminals_with_value idx "item") in
  let array = List.hd (Ast.Index.terminals_with_value idx "array") in
  let c = Context.make ~idx ~start_node:item ~end_node:array in
  check_string "paper Example 4.5"
    "SymbolVar\xe2\x86\x91VarDef\xe2\x86\x93Sub\xe2\x86\x93SymbolRef"
    (Path.to_string (Context.path c))

let test_context_reverse () =
  let idx = Ast.Index.build fig4 in
  let item = List.hd (Ast.Index.terminals_with_value idx "item") in
  let i = List.hd (Ast.Index.terminals_with_value idx "i") in
  let c = Context.make ~idx ~start_node:item ~end_node:i in
  let r = Context.reverse c in
  check_string "swap start" "i" (Context.start_value r);
  check_string "swap end" "item" (Context.end_value r);
  check_bool "path reversed" true
    (Path.equal (Path.reverse (Context.path c)) (Context.path r))

let cfg ?semi l w = Config.make ?include_semi_paths:semi ~max_length:l ~max_width:w ()

let test_extract_fig1 () =
  let idx = Ast.Index.build fig1 in
  (* 4 leaves (d, someCondition, d, true) -> 6 pairs within generous limits *)
  check_int "all pairs" 6 (List.length (Extract.leaf_pairs idx (cfg 10 10)));
  (* max_length 4 cuts the three length-5 paths rooted at While *)
  let short = Extract.leaf_pairs idx (cfg 4 10) in
  check_int "length limit" 3 (List.length short)

let test_extract_width_limit () =
  let fig5 =
    Ast.Tree.(
      nt "Var"
        (List.map
           (fun (i, n) -> nt "VarDef" [ var i "SymbolVar" n ])
           [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]))
  in
  let idx = Ast.Index.build fig5 in
  check_int "width 3: all 6 pairs" 6
    (List.length (Extract.leaf_pairs idx (cfg 10 3)));
  check_int "width 1: only adjacent" 3
    (List.length (Extract.leaf_pairs idx (cfg 10 1)));
  check_int "width 2" 5 (List.length (Extract.leaf_pairs idx (cfg 10 2)))

let test_extract_ordering () =
  let idx = Ast.Index.build fig4 in
  List.iter
    (fun (c : Context.t) ->
      check_bool "start before end in source order" true
        (Ast.Index.leaf_rank idx c.Context.start_node
        < Ast.Index.leaf_rank idx c.Context.end_node))
    (Extract.leaf_pairs idx (cfg 10 10))

let test_semi_paths () =
  let idx = Ast.Index.build fig4 in
  (* item: 1 ancestor; array: 2; i: 2 — at unlimited length. *)
  let semis = Extract.semi_paths idx (cfg 10 10) in
  check_int "count" 5 (List.length semis);
  List.iter
    (fun (c : Context.t) ->
      check_bool "pure up" true
        (Array.for_all (fun d -> d = Path.Up) (Path.dirs (Context.path c))))
    semis;
  let short = Extract.semi_paths idx (cfg 1 10) in
  check_int "length-limited" 3 (List.length short)

let test_all_includes_semi () =
  let idx = Ast.Index.build fig4 in
  let base = Extract.all idx (cfg 10 10) in
  let with_semi = Extract.all idx (cfg ~semi:true 10 10) in
  check_bool "semi adds contexts" true
    (List.length with_semi > List.length base)

let test_leaf_to_node () =
  let idx = Ast.Index.build fig4 in
  let sub = List.hd (Ast.Index.nodes_with_label idx "Sub") in
  let cs = Extract.leaf_to_node idx (cfg 10 10) ~target:sub in
  check_int "three leaves reach Sub" 3 (List.length cs);
  List.iter
    (fun (c : Context.t) ->
      check_int "target is end" sub c.Context.end_node;
      check_string "end value is label" "Sub" (Context.end_value c))
    cs

let test_star () =
  let idx = Ast.Index.build fig4 in
  let item = List.hd (Ast.Index.terminals_with_value idx "item") in
  let all = Extract.leaf_pairs idx (cfg 10 10) in
  let star = Extract.star all ~anchor:item in
  check_int "item touches 2 contexts" 2 (List.length star);
  List.iter
    (fun (c : Context.t) -> check_int "anchored" item c.Context.start_node)
    star

let test_count_within () =
  let idx = Ast.Index.build fig1 in
  check_int "count matches extraction"
    (List.length (Extract.leaf_pairs idx (cfg 5 2)))
    (Extract.count_within idx (cfg 5 2))

let test_abstractions () =
  let p = mkpath [ "SymbolRef"; "UnaryPrefix!" ] "While" [ "If"; "Assign="; "SymbolRef" ] in
  check_string "full" (Path.to_string p) (Abstraction.apply Abstraction.Full p);
  check_string "no-arrows" "SymbolRef,UnaryPrefix!,While,If,Assign=,SymbolRef"
    (Abstraction.apply Abstraction.No_arrows p);
  check_string "forget-order" "Assign=,If,SymbolRef,SymbolRef,UnaryPrefix!,While"
    (Abstraction.apply Abstraction.Forget_order p);
  check_string "first-top-last" "SymbolRef,While,SymbolRef"
    (Abstraction.apply Abstraction.First_top_last p);
  check_string "first-last" "SymbolRef,SymbolRef"
    (Abstraction.apply Abstraction.First_last p);
  check_string "top" "While" (Abstraction.apply Abstraction.Top p);
  check_string "no-paths" "*" (Abstraction.apply Abstraction.No_paths p)

let test_abstraction_names () =
  List.iter
    (fun a ->
      Alcotest.(check (option string))
        "roundtrip" (Some (Abstraction.name a))
        (Option.map Abstraction.name (Abstraction.of_name (Abstraction.name a))))
    Abstraction.all;
  Alcotest.(check bool) "unknown" true (Abstraction.of_name "zzz" = None)

let test_hash_equal_consistency () =
  let p1 = mkpath [ "A"; "B" ] "C" [ "D"; "E" ] in
  (* Same path built through a different constructor route. *)
  let p2 = Path.reverse (Path.reverse p1) in
  check_bool "equal" true (Path.equal p1 p2);
  check_int "compare 0" 0 (Path.compare p1 p2);
  check_int "equal implies same hash" (Path.hash p1) (Path.hash p2);
  let p3 = Path.of_updown ~nodes:[| "A"; "B"; "C"; "D"; "E" |] ~n_up:2 in
  check_bool "of_updown equal" true (Path.equal p1 p3);
  check_int "of_updown same hash" (Path.hash p1) (Path.hash p3);
  (* Same labels, different shape: must differ, and compare must be
     antisymmetric (the old polymorphic compare is gone). *)
  let q = Path.of_updown ~nodes:[| "A"; "B"; "C"; "D"; "E" |] ~n_up:3 in
  check_bool "different dirs not equal" false (Path.equal p1 q);
  check_bool "antisymmetric" true
    (Path.compare p1 q = -Path.compare q p1 && Path.compare p1 q <> 0);
  let shorter = mkpath [ "A" ] "B" [] in
  check_bool "shorter sorts first" true (Path.compare shorter p1 < 0)

let test_single_node_tree () =
  let idx = Ast.Index.build (Ast.Tree.term "T" "only") in
  check_int "no pairwise paths" 0
    (List.length (Extract.leaf_pairs idx (cfg 10 10)));
  check_int "count_within 0" 0 (Extract.count_within idx (cfg 10 10));
  check_int "no semi paths" 0
    (List.length (Extract.semi_paths idx (cfg 10 10)))

let test_star_orientation () =
  (* Extract.star must return the anchor as [start_value] whether the
     anchor was originally the start or the end of the context. *)
  let idx = Ast.Index.build fig4 in
  let item = List.hd (Ast.Index.terminals_with_value idx "item") in
  let i = List.hd (Ast.Index.terminals_with_value idx "i") in
  let all = Extract.leaf_pairs idx (cfg 10 10) in
  List.iter
    (fun (anchor, value) ->
      let star = Extract.star all ~anchor in
      check_bool (value ^ " star nonempty") true (star <> []);
      List.iter
        (fun (c : Context.t) ->
          check_int "anchored node" anchor c.Context.start_node;
          check_string "anchored value" value (Context.start_value c))
        star)
    [ (item, "item"); (i, "i") ]

let test_limit_boundaries_inclusive () =
  (* Paper Fig. 5: the a..d path has length exactly 4 and width exactly
     3 — limits are inclusive, so 4/3 keeps it and 3/3 or 4/2 cut it. *)
  let fig5 =
    Ast.Tree.(
      nt "Var"
        (List.map
           (fun (i, n) -> nt "VarDef" [ var i "SymbolVar" n ])
           [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]))
  in
  let idx = Ast.Index.build fig5 in
  let has_ad c =
    List.exists
      (fun (x : Context.t) ->
        String.equal (Context.start_value x) "a"
        && String.equal (Context.end_value x) "d")
      (Extract.leaf_pairs idx c)
  in
  check_bool "len = max_length kept" true (has_ad (cfg 4 3));
  check_bool "width = max_width kept" true (has_ad (cfg 10 3));
  check_bool "len > max_length cut" false (has_ad (cfg 3 3));
  check_bool "width > max_width cut" false (has_ad (cfg 4 2))

let test_iter_matches_lists () =
  let idx = Ast.Index.build fig1 in
  let collect run =
    let acc = ref [] in
    run (fun c -> acc := c :: !acc);
    List.rev !acc
  in
  let eq = Alcotest.testable Context.pp Context.equal in
  Alcotest.(check (list eq))
    "iter = leaf_pairs"
    (Extract.leaf_pairs idx (cfg 5 3))
    (collect (Extract.iter idx (cfg 5 3)));
  Alcotest.(check (list eq))
    "iter_all = all"
    (Extract.all idx (cfg ~semi:true 5 3))
    (collect (Extract.iter_all idx (cfg ~semi:true 5 3)))

let test_iter_downsample () =
  let idx = Ast.Index.build fig1 in
  let run ?downsample () =
    let acc = ref [] in
    Extract.iter_all ?downsample idx (cfg ~semi:true 10 10) (fun c ->
        acc := Context.to_string c :: !acc);
    List.rev !acc
  in
  let with_seed s p = run ~downsample:(Random.State.make [| s |], p) () in
  Alcotest.(check (list string))
    "same seed, same result" (with_seed 9 0.5) (with_seed 9 0.5);
  Alcotest.(check (list string)) "p=1 is undownsampled" (run ()) (with_seed 3 1.0);
  Alcotest.(check (list string)) "p=0 drops everything" [] (with_seed 3 0.0);
  check_bool "p=0.5 drops some" true
    (List.length (with_seed 9 0.5) < List.length (run ()))

let test_downsample () =
  let rng = Random.State.make [| 42 |] in
  let xs = List.init 1000 Fun.id in
  Alcotest.(check (list int)) "p=1 identity" xs (Downsample.keep rng ~p:1.0 xs);
  Alcotest.(check (list int)) "p=0 empty" [] (Downsample.keep rng ~p:0.0 xs);
  let kept = Downsample.keep rng ~p:0.5 xs in
  let n = List.length kept in
  check_bool "roughly half" true (n > 400 && n < 600);
  (* order preserved *)
  check_bool "sorted" true (List.sort compare kept = kept)

(* ---------- property tests ---------- *)

let gen_tree =
  let open QCheck2.Gen in
  sized_size (int_range 1 30) @@ fix (fun self n ->
      if n <= 1 then
        map2
          (fun l v -> Ast.Tree.term ("T" ^ string_of_int l) ("v" ^ string_of_int v))
          (int_range 0 4) (int_range 0 9)
      else
        let* k = int_range 1 (min 4 n) in
        let* lbl = int_range 0 4 in
        let+ cs = list_repeat k (self (n / k)) in
        Ast.Tree.nt ("N" ^ string_of_int lbl) cs)

let gen_cfg =
  QCheck2.Gen.(
    map2
      (fun l w -> Config.make ~max_length:l ~max_width:w ())
      (int_range 1 10) (int_range 0 5))

let prop_limits_respected =
  QCheck2.Test.make ~name:"extract: length/width limits respected" ~count:200
    QCheck2.Gen.(pair gen_tree gen_cfg)
    (fun (t, c) ->
      let idx = Ast.Index.build t in
      List.for_all
        (fun (ctx : Context.t) ->
          let l = Ast.Index.lca idx ctx.Context.start_node ctx.Context.end_node in
          let w =
            Ast.Index.width_between idx ~lca:l ctx.Context.start_node
              ctx.Context.end_node
          in
          Path.length (Context.path ctx) <= c.Config.max_length
          && w <= c.Config.max_width)
        (Extract.leaf_pairs idx c))

let prop_path_length_matches_depth =
  QCheck2.Test.make ~name:"extract: path length = depth formula" ~count:200
    gen_tree (fun t ->
      let idx = Ast.Index.build t in
      let c = Config.make ~max_length:20 ~max_width:20 () in
      List.for_all
        (fun (ctx : Context.t) ->
          let l = Ast.Index.lca idx ctx.Context.start_node ctx.Context.end_node in
          let expected =
            Ast.Index.depth idx ctx.Context.start_node
            + Ast.Index.depth idx ctx.Context.end_node
            - (2 * Ast.Index.depth idx l)
          in
          Path.length (Context.path ctx) = expected)
        (Extract.leaf_pairs idx c))

let prop_monotone_in_length =
  QCheck2.Test.make ~name:"extract: monotone in max_length" ~count:100 gen_tree
    (fun t ->
      let idx = Ast.Index.build t in
      let count l =
        List.length (Extract.leaf_pairs idx (Config.make ~max_length:l ~max_width:8 ()))
      in
      let rec mono l = l > 10 || (count l <= count (l + 1) && mono (l + 1)) in
      mono 1)

let prop_abstraction_refines =
  (* Along each genuine refinement chain of the abstraction lattice, the
     number of distinct keys can only shrink. (The lattice is partial:
     e.g. forget-order and first-top-last are incomparable.) *)
  QCheck2.Test.make ~name:"abstraction: distinct-key counts shrink along chains"
    ~count:100 gen_tree (fun t ->
      let idx = Ast.Index.build t in
      let paths =
        List.map
          (fun (c : Context.t) -> (Context.path c))
          (Extract.leaf_pairs idx (Config.make ~max_length:12 ~max_width:8 ()))
      in
      let distinct a =
        List.sort_uniq String.compare (List.map (Abstraction.apply a) paths)
        |> List.length
      in
      let chains =
        Abstraction.
          [
            [ Full; No_arrows; Forget_order; No_paths ];
            [ Full; First_top_last; First_last; No_paths ];
            [ Full; First_top_last; Top; No_paths ];
          ]
      in
      List.for_all
        (fun chain ->
          let counts = List.map distinct chain in
          let rec non_increasing = function
            | a :: (b :: _ as rest) -> a >= b && non_increasing rest
            | _ -> true
          in
          non_increasing counts)
        chains)

let prop_reverse_involution =
  QCheck2.Test.make ~name:"path: reverse is an involution" ~count:200 gen_tree
    (fun t ->
      let idx = Ast.Index.build t in
      List.for_all
        (fun (c : Context.t) ->
          Path.equal (Context.path c) (Path.reverse (Path.reverse (Context.path c))))
        (Extract.leaf_pairs idx (Config.make ~max_length:10 ~max_width:8 ())))

let prop_downsample_subset =
  QCheck2.Test.make ~name:"downsample: result is a sub-sequence" ~count:200
    QCheck2.Gen.(pair (list int) (float_bound_inclusive 1.0))
    (fun (xs, p) ->
      let rng = Random.State.make [| 7 |] in
      let kept = Downsample.keep rng ~p xs in
      (* subsequence check *)
      let rec sub = function
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x = y then sub (xs', ys') else sub (x :: xs', ys')
      in
      sub (kept, xs))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "path",
      [
        Alcotest.test_case "of_chain basics" `Quick test_make_valid;
        Alcotest.test_case "invalid paths rejected" `Quick test_make_invalid;
        Alcotest.test_case "singleton path" `Quick test_singleton;
        Alcotest.test_case "paper notation" `Quick test_to_string;
        Alcotest.test_case "reverse" `Quick test_reverse;
        Alcotest.test_case "hash/equal consistency" `Quick
          test_hash_equal_consistency;
      ] );
    ( "context",
      [
        Alcotest.test_case "paper path I (fig 1)" `Quick test_context_fig1;
        Alcotest.test_case "paper example 4.5 (fig 4)" `Quick test_context_fig4;
        Alcotest.test_case "reverse swaps ends" `Quick test_context_reverse;
      ] );
    ( "extract",
      [
        Alcotest.test_case "fig1 pair counts" `Quick test_extract_fig1;
        Alcotest.test_case "fig5 width limits" `Quick test_extract_width_limit;
        Alcotest.test_case "source-order endpoints" `Quick test_extract_ordering;
        Alcotest.test_case "semi-paths" `Quick test_semi_paths;
        Alcotest.test_case "all with semi" `Quick test_all_includes_semi;
        Alcotest.test_case "leaf-to-nonterminal" `Quick test_leaf_to_node;
        Alcotest.test_case "n-wise star view" `Quick test_star;
        Alcotest.test_case "count_within" `Quick test_count_within;
        Alcotest.test_case "single-node tree" `Quick test_single_node_tree;
        Alcotest.test_case "star anchors both orientations" `Quick
          test_star_orientation;
        Alcotest.test_case "limit boundaries inclusive" `Quick
          test_limit_boundaries_inclusive;
        Alcotest.test_case "iterator matches lists" `Quick
          test_iter_matches_lists;
        Alcotest.test_case "iterator downsampling seeded" `Quick
          test_iter_downsample;
      ] );
    ( "abstraction",
      [
        Alcotest.test_case "all seven levels" `Quick test_abstractions;
        Alcotest.test_case "name round-trip" `Quick test_abstraction_names;
      ] );
    ("downsample", [ Alcotest.test_case "keep probabilities" `Quick test_downsample ]);
    ( "properties",
      qcheck
        [
          prop_limits_respected;
          prop_path_length_matches_depth;
          prop_monotone_in_length;
          prop_abstraction_refines;
          prop_reverse_involution;
          prop_downsample_subset;
        ] );
  ]

let () = Alcotest.run "path" suite
