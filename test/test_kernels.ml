(* Golden-equivalence suite for the dense numeric kernels (PR 4):

   - incremental ICM (score cache + dirty worklist) must be
     *byte-identical* to the full-rescore reference — MAP assignments,
     trained weights, and the string-side Inference sweep alike;
   - the flat-matrix SGNS kernel under the exact sigmoid must be
     bitwise-identical to the kept nested-array Reference trainer,
     sequentially and through the domain pool;
   - the sigmoid LUT must stay inside its documented error budget and
     must not change eval-level rankings on planted-cluster data;
   - a qcheck property pins the Scorer invariant: cached candidate
     scores equal freshly computed node_score after arbitrary flip
     sequences. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let pools = Hashtbl.create 4

let pool ~jobs =
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Parallel.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

let () = at_exit (fun () -> Hashtbl.iter (fun _ p -> Parallel.shutdown p) pools)

(* ---------- fixtures ---------- *)

let corpus render ~n ~seed =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
  Corpus.Gen.generate_sources config render

let split_of sources =
  let entries =
    List.map (fun (path, source) -> { Corpus.Dataset.path; source }) sources
  in
  let deduped = Corpus.Dataset.dedup entries in
  let s = Corpus.Dataset.split_corpus ~seed:11 deduped in
  let pairs xs =
    List.map (fun e -> (e.Corpus.Dataset.path, e.Corpus.Dataset.source)) xs
  in
  (pairs s.Corpus.Dataset.train, pairs s.Corpus.Dataset.test)

let graphs_fixture render lang ~n ~seed =
  lazy
    (let train, test = split_of (corpus render ~n ~seed) in
     let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
     let graphs_of srcs =
       Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
         srcs
     in
     (graphs_of train, graphs_of test))

(* Two corpora from different front-ends so the goldens cover distinct
   factor-graph shapes, not one lucky layout. *)
let js_fixture =
  graphs_fixture Corpus.Render.Js Pigeon.Lang.javascript ~n:40 ~seed:92

let java_fixture =
  graphs_fixture Corpus.Render.Java Pigeon.Lang.java ~n:30 ~seed:77

let fixtures = [ ("js", js_fixture); ("java", java_fixture) ]

let quick_pl = { Crf.Train.default_config with Crf.Train.iterations = 3 }

let quick_structured =
  {
    Crf.Train.default_config with
    Crf.Train.iterations = 3;
    trainer = Crf.Fast.Structured;
  }

let with_engine cfg engine = { cfg with Crf.Train.engine }

let reconfigure model config = { model with Crf.Train.config }

(* Weight tables in key order — byte-identical models have equal
   sorted dumps (and identical interner contents). *)
let sorted_dump fast =
  let d = Crf.Fast.dump fast in
  let s l = List.sort compare l in
  ( d.Crf.Fast.d_labels,
    d.Crf.Fast.d_rels,
    s d.Crf.Fast.d_pw,
    s d.Crf.Fast.d_un,
    s d.Crf.Fast.d_bias )

(* ---------- incremental ICM vs full rescore ---------- *)

(* Same trained model, MAP inference under both engines: every test
   graph's assignment must match byte for byte. *)
let test_icm_map_golden () =
  List.iter
    (fun (name, fixture) ->
      let train_graphs, test_graphs = Lazy.force fixture in
      let model = Crf.Train.train ~config:quick_pl train_graphs in
      let inc =
        reconfigure model (with_engine quick_pl Crf.Fast.Incremental)
      in
      let full =
        reconfigure model (with_engine quick_pl Crf.Fast.Full_rescore)
      in
      List.iteri
        (fun gi g ->
          check_bool
            (Printf.sprintf "%s graph %d MAP identical" name gi)
            true
            (Crf.Train.predict inc g = Crf.Train.predict full g))
        test_graphs)
      fixtures

(* Structured training runs ICM inside the perceptron loop: training
   under each engine must give byte-identical weights (sorted dumps)
   and predictions. *)
let test_icm_train_golden () =
  List.iter
    (fun (name, fixture) ->
      let train_graphs, test_graphs = Lazy.force fixture in
      let m_inc =
        Crf.Train.train
          ~config:(with_engine quick_structured Crf.Fast.Incremental)
          train_graphs
      in
      let m_full =
        Crf.Train.train
          ~config:(with_engine quick_structured Crf.Fast.Full_rescore)
          train_graphs
      in
      check_bool
        (Printf.sprintf "%s trained weights byte-identical" name)
        true
        (sorted_dump m_inc.Crf.Train.fast = sorted_dump m_full.Crf.Train.fast);
      check_bool
        (Printf.sprintf "%s predictions identical" name)
        true
        (List.map (Crf.Train.predict m_inc) test_graphs
        = List.map (Crf.Train.predict m_full) test_graphs))
    fixtures

(* The string-side Inference sweep (used by top_k and the baselines)
   has the same two engines; same byte-identity requirement, with and
   without forced candidates. *)
let test_inference_engine_golden () =
  let train_graphs, test_graphs = Lazy.force js_fixture in
  let model = Crf.Train.train ~config:quick_pl train_graphs in
  let weights = Lazy.force model.Crf.Train.weights
  and cands = (Lazy.force model.Crf.Train.candidates) in
  let run ?force_candidates engine g =
    Crf.Inference.map_assignment ~engine ?force_candidates weights cands g
  in
  List.iteri
    (fun gi g ->
      check_bool
        (Printf.sprintf "graph %d assignments identical" gi)
        true
        (run Crf.Fast.Incremental g = run Crf.Fast.Full_rescore g);
      let gold = Crf.Graph.gold_assignment g in
      let force n = if n mod 2 = 0 then [ gold.(n) ] else [] in
      check_bool
        (Printf.sprintf "graph %d forced-candidate assignments identical" gi)
        true
        (run ~force_candidates:force Crf.Fast.Incremental g
        = run ~force_candidates:force Crf.Fast.Full_rescore g))
    test_graphs

(* ---------- forced-candidate dedup (hashed, same semantics) ---------- *)

let test_forced_dedup () =
  let train_graphs, _ = Lazy.force js_fixture in
  let cands = Crf.Candidates.build train_graphs in
  let g =
    List.find (fun g -> Crf.Graph.num_unknown g > 0) train_graphs
  in
  let touching = Crf.Graph.touching g in
  let cfg = Crf.Inference.default_config in
  let n = List.hd (Crf.Graph.unknown_ids g) in
  let base = Crf.Inference.node_candidates cfg cands g touching n in
  (* Forced list mixing: a label already in base (dropped), new labels
     (appended in order), and a duplicate within forced (kept twice —
     dedup is against base only). *)
  let forced =
    (match base with l :: _ -> [ l ] | [] -> [])
    @ [ "zz_forced_a"; "zz_forced_b"; "zz_forced_a" ]
  in
  let expect = base @ List.filter (fun l -> not (List.mem l base)) forced in
  let got =
    Crf.Inference.node_candidates
      ~force:(fun i -> if i = n then forced else [])
      cfg cands g touching n
  in
  Alcotest.(check (list string)) "dedup spec unchanged" expect got;
  Alcotest.(check (list string))
    "no force, no change" base
    (Crf.Inference.node_candidates
       ~force:(fun _ -> [])
       cfg cands g touching n)

(* ---------- qcheck: Scorer invariant under random flips ---------- *)

let scorer_fixture =
  lazy
    (let train_graphs, test_graphs = Lazy.force js_fixture in
     let model = Crf.Train.train ~config:quick_pl train_graphs in
     let m = model.Crf.Train.fast in
     let cands = (Lazy.force model.Crf.Train.candidates) in
     (* The test graph with the most unknowns — the richest factor
        neighborhood available. *)
     let g =
       List.fold_left
         (fun best g ->
           if Crf.Graph.num_unknown g > Crf.Graph.num_unknown best then g
           else best)
         (List.hd test_graphs) test_graphs
     in
     let eg = Crf.Fast.encode m g in
     let cand =
       Crf.Fast.candidate_ids Crf.Fast.default_config cands m eg
         ~force_gold:false
     in
     (m, g, eg, cand))

let prop_scorer_matches_node_score =
  QCheck2.Test.make
    ~name:"kernels: cached scores = fresh node_score after random flips"
    ~count:60
    QCheck2.Gen.(list_size (int_range 0 40) (pair nat nat))
    (fun flips ->
      let m, g, eg, cand = Lazy.force scorer_fixture in
      let unknowns = Crf.Fast.unknown_nodes eg in
      let k = Array.length unknowns in
      let syms = Crf.Fast.symbols m in
      let assignment =
        Array.map
          (fun (nd : Crf.Graph.node) ->
            Crf.Symbols.label syms nd.Crf.Graph.gold)
          g.Crf.Graph.nodes
      in
      Array.iteri
        (fun i n ->
          if Array.length cand.(i) > 0 then assignment.(n) <- cand.(i).(0))
        unknowns;
      let sc = Crf.Fast.Scorer.create m eg cand assignment in
      let scores_ok () =
        let ok = ref true in
        for i = 0 to k - 1 do
          let n = unknowns.(i) in
          let cached = Array.copy (Crf.Fast.Scorer.scores sc i) in
          let fresh =
            Array.map (Crf.Fast.node_score m eg n assignment) cand.(i)
          in
          if cached <> fresh then ok := false
        done;
        !ok
      in
      k = 0
      || List.for_all
           (fun (a, b) ->
             let i = a mod k in
             (match cand.(i) with
             | [||] -> ()
             | cs ->
                 Crf.Fast.Scorer.set_label sc i cs.(b mod Array.length cs));
             scores_ok ())
           flips
         && scores_ok ())

(* ---------- SGNS: flat kernel vs reference ---------- *)

let sgns_pairs =
  List.init 3000 (fun i ->
      ( Printf.sprintf "w%d" (i * 11 mod 37),
        Printf.sprintf "c%d" (i * 7 mod 53) ))

let sgns_config =
  { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 3; dim = 16 }

let vectors m = (m.Word2vec.Sgns.word_vecs, m.Word2vec.Sgns.context_vecs)

(* Exact sigmoid removes the only numeric difference between the flat
   kernel and the nested-array Reference: the matrices must come out
   bitwise equal, sequentially and through the pool's deterministic
   sharded path. *)
let test_sgns_flat_exact_bitwise () =
  let flat = Word2vec.Sgns.train ~sigmoid:`Exact ~config:sgns_config sgns_pairs in
  let reference = Word2vec.Sgns.Reference.train ~config:sgns_config sgns_pairs in
  check_bool "sequential: flat(exact) = reference bitwise" true
    (vectors flat = vectors reference);
  let flat2 =
    Word2vec.Sgns.train ~pool:(pool ~jobs:2)
      ~mode:Word2vec.Sgns.Deterministic ~sigmoid:`Exact ~config:sgns_config
      sgns_pairs
  in
  let reference2 =
    Word2vec.Sgns.Reference.train ~pool:(pool ~jobs:2)
      ~mode:Word2vec.Sgns.Deterministic ~config:sgns_config sgns_pairs
  in
  check_bool "jobs=2 deterministic: flat(exact) = reference bitwise" true
    (vectors flat2 = vectors reference2)

let test_sigmoid_lut_error_bound () =
  let worst = ref 0. in
  for i = 0 to 160_000 do
    let x = -40. +. (float_of_int i *. 0.0005) in
    let e = Float.abs (Word2vec.Sgns.sigmoid_lut x -. Word2vec.Sgns.sigmoid x) in
    if e > !worst then worst := e
  done;
  check_bool
    (Printf.sprintf "max |lut - exact| = %.2e < 1e-3" !worst)
    true (!worst < 1e-3)

(* Planted clusters: words attach overwhelmingly to one cluster
   context. The LUT's <1e-3 sigmoid error must not change eval-level
   results: per-context word rankings from the LUT-trained and
   reference-trained models agree on the (well separated) top-3. *)
let planted_pairs =
  List.concat
    (List.init 30 (fun i ->
         let cl = i mod 10 in
         List.init 20 (fun j ->
             let ctx = if j mod 10 = 9 then (cl + 1) mod 10 else cl in
             (Printf.sprintf "w%02d" i, Printf.sprintf "k%d" ctx))))

let top3 m ctx =
  Word2vec.Sgns.predict m [ ctx ]
  |> List.filteri (fun i _ -> i < 3)
  |> List.map fst |> List.sort compare

let test_sgns_lut_ranking_agreement () =
  let cfg =
    { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 5; dim = 16 }
  in
  let lut = Word2vec.Sgns.train ~config:cfg planted_pairs in
  let reference = Word2vec.Sgns.Reference.train ~config:cfg planted_pairs in
  for cl = 0 to 9 do
    let ctx = Printf.sprintf "k%d" cl in
    let got = top3 lut ctx and want = top3 reference ctx in
    Alcotest.(check (list string))
      (Printf.sprintf "top-3 for %s agree" ctx)
      want got;
    (* And the reference ranking itself is the planted cluster. *)
    List.iter
      (fun w ->
        let i = int_of_string (String.sub w 1 2) in
        check_int (Printf.sprintf "%s belongs to cluster %d" w cl) cl (i mod 10))
      want
  done

(* most_similar after the once-per-call norm precompute: every
   reported score must equal the direct cosine, best-first. *)
let test_most_similar_scores () =
  let m = Word2vec.Sgns.train ~config:sgns_config sgns_pairs in
  let w = "w0" in
  let res = Word2vec.Sgns.most_similar m w ~k:5 in
  check_int "k results" 5 (List.length res);
  let wv = Option.get (Word2vec.Sgns.word_vec m w) in
  let norm v = sqrt (Word2vec.Sgns.dot v v) in
  let nw = norm wv in
  List.iter
    (fun (x, s) ->
      check_bool "not the query word" true (not (String.equal x w));
      let v = Option.get (Word2vec.Sgns.word_vec m x) in
      let d = norm v *. nw in
      let expect = if d = 0. then 0. else Word2vec.Sgns.dot wv v /. d in
      Alcotest.(check (float 0.)) (Printf.sprintf "cosine for %s" x) expect s)
    res;
  let scores = List.map snd res in
  check_bool "scores non-increasing" true
    (List.for_all2 (fun a b -> a >= b)
       (List.filteri (fun i _ -> i < 4) scores)
       (List.tl scores))

let () =
  Alcotest.run "kernels"
    [
      ( "icm",
        [
          Alcotest.test_case "MAP golden: incremental = full rescore" `Quick
            test_icm_map_golden;
          Alcotest.test_case "training golden: weights byte-identical" `Quick
            test_icm_train_golden;
          Alcotest.test_case "string-side engines identical" `Quick
            test_inference_engine_golden;
          Alcotest.test_case "forced-candidate dedup spec" `Quick
            test_forced_dedup;
          QCheck_alcotest.to_alcotest prop_scorer_matches_node_score;
        ] );
      ( "sgns",
        [
          Alcotest.test_case "flat kernel bitwise = reference (exact sigmoid)"
            `Quick test_sgns_flat_exact_bitwise;
          Alcotest.test_case "sigmoid LUT error bound" `Quick
            test_sigmoid_lut_error_bound;
          Alcotest.test_case "LUT ranking agreement on planted clusters"
            `Quick test_sgns_lut_ranking_agreement;
          Alcotest.test_case "most_similar scores are cosines" `Quick
            test_most_similar_scores;
        ] );
    ]
