(* Tests for the MiniJava front-end: lexer, parser (incl. backtracking
   disambiguation), printer round-trips, typing and lowering. *)

open Minijava

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* The paper's Fig. 9 count example, wrapped in a class. *)
let fig9 =
  "import java.util.List;\n\
   class Util {\n\
  \  int count(List<Integer> values, int value) {\n\
  \    int count = 0;\n\
  \    for (int v : values) {\n\
  \      if (v == value) {\n\
  \        count++;\n\
  \      }\n\
  \    }\n\
  \    return count;\n\
  \  }\n\
   }\n"

let fig9_flag =
  "class Flags {\n\
  \  void run() {\n\
  \    boolean done = false;\n\
  \    while (!done) {\n\
  \      if (someCondition()) {\n\
  \        done = true;\n\
  \      }\n\
  \    }\n\
  \  }\n\
   }\n"

(* ---------- lexer ---------- *)

let lex_toks src = List.map (fun { Token.tok; _ } -> tok) (Lexer.tokenize src)

let test_lex_literals () =
  let toks = lex_toks "1 2.5 1.0f 'c' \"s\" 42L" in
  let kinds =
    List.filter_map
      (function
        | Token.IntLit x -> Some ("i" ^ x)
        | Token.DoubleLit x -> Some ("d" ^ x)
        | Token.CharLit x -> Some ("c" ^ x)
        | Token.StrLit x -> Some ("s" ^ x)
        | _ -> None)
      toks
  in
  Alcotest.(check (list string))
    "kinds" [ "i1"; "d2.5"; "d1.0f"; "cc"; "ss"; "i42L" ] kinds

let test_lex_no_shift_fusion () =
  (* [>] [>] must stay separate so List<Map<K,V>> lexes. *)
  let toks = lex_toks "List<Map<String,Integer>>" in
  let gt = List.filter (fun t -> Token.equal t (Token.Punct ">")) toks in
  check_int "two separate >" 2 (List.length gt)

(* ---------- types ---------- *)

let test_parse_type () =
  check_string "generic nested"
    "java.util.Map<String, java.util.List<Integer>>"
    (Types.to_string (Parser.parse_type "java.util.Map<String, java.util.List<Integer>>"));
  check_string "array" "int[][]" (Types.to_string (Parser.parse_type "int[][]"));
  check_string "simple" "String" (Types.to_string (Parser.parse_type "String"))

(* ---------- parser ---------- *)

let test_parse_fig9 () =
  let p = Parser.parse fig9 in
  check_int "one import" 1 (List.length p.Syntax.imports);
  let c = List.hd p.Syntax.classes in
  check_string "class name" "Util" c.Syntax.c_name;
  let m = List.hd c.Syntax.c_methods in
  check_string "method name" "count" m.Syntax.m_name;
  check_int "two params" 2 (List.length m.Syntax.m_params);
  match m.Syntax.m_body with
  | [ Syntax.LocalDecl (Types.Prim "int", [ ("count", Some _) ]);
      Syntax.ForEach (Types.Prim "int", "v", Syntax.Ident "values", _);
      Syntax.Return (Some (Syntax.Ident "count")) ] ->
      ()
  | _ -> Alcotest.fail "unexpected fig9 body"

let test_decl_vs_expr () =
  (* Foo x = e; is a declaration; foo.bar(); is an expression. *)
  (match Parser.parse_stmts "Foo x = make();" with
  | [ Syntax.LocalDecl (Types.Named ([ "Foo" ], []), [ ("x", Some _) ]) ] -> ()
  | _ -> Alcotest.fail "decl");
  (match Parser.parse_stmts "foo.bar();" with
  | [ Syntax.ExprStmt (Syntax.Call (Some (Syntax.Ident "foo"), "bar", [])) ] -> ()
  | _ -> Alcotest.fail "expr stmt");
  match Parser.parse_stmts "List<Integer> xs = new ArrayList<Integer>();" with
  | [ Syntax.LocalDecl (Types.Named ([ "List" ], [ _ ]), [ ("xs", Some (Syntax.New _)) ]) ] ->
      ()
  | _ -> Alcotest.fail "generic decl"

let test_generics_vs_comparison () =
  (* a < b is a comparison, not a type. *)
  match Parser.parse_stmts "boolean r = a < b;" with
  | [ Syntax.LocalDecl (_, [ ("r", Some (Syntax.Binary ("<", _, _))) ]) ] -> ()
  | _ -> Alcotest.fail "comparison mis-parsed"

let test_cast_vs_paren () =
  (match Parser.parse_expr "(String) x" with
  | Syntax.Cast (Types.Named ([ "String" ], []), Syntax.Ident "x") -> ()
  | _ -> Alcotest.fail "cast");
  match Parser.parse_expr "(x) + 1" with
  | Syntax.Binary ("+", Syntax.Ident "x", Syntax.IntLit "1") -> ()
  | _ -> Alcotest.fail "paren expr mis-parsed as cast"

let test_parse_constructor () =
  let src = "class A { int x; A(int x) { this.x = x; } }" in
  let p = Parser.parse src in
  let c = List.hd p.Syntax.classes in
  check_int "one field" 1 (List.length c.Syntax.c_fields);
  let m = List.hd c.Syntax.c_methods in
  check_bool "ctor flag" true (List.mem "constructor" m.Syntax.m_modifiers)

let test_parse_for_classic () =
  match Parser.parse_stmts "for (int i = 0; i < n; i++) { use(i); }" with
  | [ Syntax.For (Some (Syntax.LocalDecl _), Some _, [ Syntax.Update ("++", false, _) ], [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "classic for"

let test_parse_try () =
  match
    Parser.parse_stmts
      "try { risky(); } catch (IOException e) { log(e); } finally { close(); }"
  with
  | [ Syntax.Try ([ _ ], Some (Types.Named ([ "IOException" ], []), "e", [ _ ]), Some [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "try/catch/finally"

let test_parse_instanceof_ternary () =
  match Parser.parse_expr "x instanceof String ? 1 : 2" with
  | Syntax.Cond (Syntax.InstanceOf _, _, _) -> ()
  | _ -> Alcotest.fail "instanceof/ternary"

let test_parse_field_and_static () =
  let src =
    "class C { private static final int MAX = 10; public static void main(String[] args) { } }"
  in
  let p = Parser.parse src in
  let c = List.hd p.Syntax.classes in
  let f = List.hd c.Syntax.c_fields in
  Alcotest.(check (list string))
    "field mods" [ "private"; "static"; "final" ] f.Syntax.f_modifiers;
  let m = List.hd c.Syntax.c_methods in
  check_bool "main is static" true (List.mem "static" m.Syntax.m_modifiers);
  match m.Syntax.m_params with
  | [ (Types.Arr (Types.Named ([ "String" ], [])), "args") ] -> ()
  | _ -> Alcotest.fail "string[] args"

let test_parse_error () =
  match Parser.parse "class {" with
  | _ -> Alcotest.fail "expected error"
  | exception Lexkit.Error _ -> ()

(* ---------- printer round-trips ---------- *)

let roundtrip src =
  let p = Parser.parse src in
  let printed = Printer.program_to_string p in
  match Parser.parse printed with
  | p2 -> check_bool ("round-trip: " ^ src) true (Syntax.equal_program p p2)
  | exception Lexkit.Error (m, pos) ->
      Alcotest.failf "re-parse failed at %a: %s\n%s" Lexkit.pp_pos pos m printed

let test_roundtrip () =
  List.iter roundtrip
    [
      fig9;
      fig9_flag;
      "package com.example;\nimport java.util.*;\nclass A { }";
      "class B { int f(int a, int b) { return a % b; } }";
      "class C { void g() { int[] xs = new int[10]; xs[0] = 1; } }";
      "class D { String h(Object o) { return (String) o; } }";
      "class E { void i() { for (String s : names) { use(s); } } }";
      "class F { double j() { return 1.5 * 2.0; } }";
      "class G { void k() { do { t--; } while (t > 0); } }";
      "class H { boolean l(Object o) { return o instanceof String; } }";
      "class I { void m() { this.x = x; } int x; }";
      "class J { void n() { Map<String, List<Integer>> m = new HashMap<String, List<Integer>>(); } }";
      "class K extends Base implements Runnable { void run() { } }";
      "class L { int o(int x) { return x > 0 ? x : -x; } }";
    ]

(* ---------- typing ---------- *)

let env_of src =
  let p = Parser.parse src in
  let resolve = Typing.resolver p in
  let c = List.hd p.Syntax.classes in
  (p, resolve, c)

let type_in_method src locals e_src =
  let _, resolve, c = env_of src in
  let env =
    Typing.class_env ~resolve c ~local:(fun n ->
        Option.map resolve (List.assoc_opt n locals))
  in
  Option.map Types.to_string (Typing.type_expr env (Parser.parse_expr e_src))

let cls_src = "import com.example.Widget;\nclass T { int size; String name(){ return \"x\"; } }"

let test_typing_literals () =
  let t e = type_in_method cls_src [] e in
  Alcotest.(check (option string)) "int" (Some "int") (t "42");
  Alcotest.(check (option string)) "double" (Some "double") (t "1.5");
  Alcotest.(check (option string)) "string" (Some "java.lang.String") (t "\"s\"");
  Alcotest.(check (option string)) "bool" (Some "boolean") (t "true");
  Alcotest.(check (option string)) "null" None (t "null")

let test_typing_arith_and_concat () =
  let t e = type_in_method cls_src [ ("x", Types.prim "int"); ("s", Types.named "String") ] e in
  Alcotest.(check (option string)) "int+int" (Some "int") (t "x + 1");
  Alcotest.(check (option string)) "widen" (Some "double") (t "x + 1.5");
  Alcotest.(check (option string)) "concat" (Some "java.lang.String") (t "s + x");
  Alcotest.(check (option string)) "compare" (Some "boolean") (t "x < 2");
  Alcotest.(check (option string)) "not" (Some "boolean") (t "!true")

let test_typing_calls () =
  let locals =
    [
      ("s", Types.named "String");
      ("xs", Types.named ~args:[ Types.named "Integer" ] "List");
      ("m", Types.named ~args:[ Types.named "String"; Types.named "Double" ] "Map");
    ]
  in
  let t e = type_in_method cls_src locals e in
  Alcotest.(check (option string)) "String.length" (Some "int") (t "s.length()");
  Alcotest.(check (option string)) "List.get" (Some "java.lang.Integer") (t "xs.get(0)");
  Alcotest.(check (option string)) "Map.get" (Some "java.lang.Double") (t "m.get(s)");
  Alcotest.(check (option string)) "static" (Some "int") (t "Integer.parseInt(s)");
  Alcotest.(check (option string)) "own method" (Some "java.lang.String") (t "name()");
  Alcotest.(check (option string)) "chained"
    (Some "java.lang.String") (t "s.substring(1).toUpperCase()")

let test_typing_misc () =
  let locals = [ ("arr", Types.Arr (Types.prim "int")) ] in
  let t e = type_in_method cls_src locals e in
  Alcotest.(check (option string)) "index" (Some "int") (t "arr[0]");
  Alcotest.(check (option string)) "arr.length" (Some "int") (t "arr.length");
  Alcotest.(check (option string)) "new resolved"
    (Some "java.util.ArrayList<java.lang.String>") (t "new ArrayList<String>()");
  Alcotest.(check (option string)) "imported"
    (Some "com.example.Widget") (t "new Widget()");
  Alcotest.(check (option string)) "field" (Some "int") (t "size");
  Alcotest.(check (option string)) "this.field" (Some "int") (t "this.size");
  Alcotest.(check (option string)) "System.out"
    (Some "java.io.PrintStream") (t "System.out")

(* ---------- lowering ---------- *)

let test_lower_binders () =
  let tree = Lower.program (Parser.parse fig9) in
  let idx = Ast.Index.build tree in
  (* "count" appears as local decl + update + return = 3 Var occurrences
     sharing a binder; the method name "count" is a separate Name leaf. *)
  let counts = Ast.Index.terminals_with_value idx "count" in
  check_int "four count leaves" 4 (List.length counts);
  let var_ids =
    List.filter_map
      (fun n ->
        match Ast.Index.sort idx n with
        | Some (Ast.Tree.Var i) -> Some i
        | _ -> None)
      counts
  in
  check_int "three are locals" 3 (List.length var_ids);
  check_bool "same binder" true
    (List.for_all (fun i -> i = List.hd var_ids) var_ids);
  let methods = Ast.Index.nodes_with_label idx Lower.method_name_label in
  check_int "one method name" 1 (List.length methods)

let test_lower_flag_path () =
  (* The Java version of the paper's Fig. 1 path. *)
  let tree = Lower.program (Parser.parse fig9_flag) in
  let idx = Ast.Index.build tree in
  let ds = Ast.Index.terminals_with_value idx "done" in
  check_int "three dones" 3 (List.length ds);
  let a = List.nth ds 1 and b = List.nth ds 2 in
  let c = Astpath.Context.make ~idx ~start_node:a ~end_node:b in
  check_string "while-if-assign path"
    "NameExpr\xe2\x86\x91UnaryExpr!\xe2\x86\x91WhileStmt\xe2\x86\x93IfStmt\xe2\x86\x93AssignExpr=\xe2\x86\x93NameExpr"
    (Astpath.Path.to_string (Astpath.Context.path c))

let test_lower_type_tags () =
  let src =
    "class T { int f(java.util.List<String> xs) { String s = xs.get(0); return s.length() + 1; } }"
  in
  let tree = Lower.program ~typed:true (Parser.parse src) in
  let idx = Ast.Index.build tree in
  let tags = ref [] in
  for i = 0 to Ast.Index.size idx - 1 do
    match Ast.Index.tag idx i with
    | Some t -> tags := (Ast.Index.label idx i, t) :: !tags
    | None -> ()
  done;
  check_bool "xs.get(0) tagged String" true
    (List.mem ("MethodCallExpr", "type:java.lang.String") !tags);
  check_bool "s.length() + 1 tagged int" true
    (List.mem ("BinaryExpr+", "type:int") !tags)

let test_lower_untyped_has_no_tags () =
  let tree = Lower.program (Parser.parse fig9) in
  let idx = Ast.Index.build tree in
  let any = ref false in
  for i = 0 to Ast.Index.size idx - 1 do
    if Ast.Index.tag idx i <> None then any := true
  done;
  check_bool "no tags" false !any

let test_lower_block_scoping () =
  let src =
    "class S { void f() { if (a) { int x = 1; use(x); } if (b) { int x = 2; use(x); } } }"
  in
  let tree = Lower.program (Parser.parse src) in
  let idx = Ast.Index.build tree in
  let xs = Ast.Index.terminals_with_value idx "x" in
  let ids =
    List.sort_uniq compare
      (List.filter_map
         (fun n ->
           match Ast.Index.sort idx n with
           | Some (Ast.Tree.Var i) -> Some i
           | _ -> None)
         xs)
  in
  check_int "two distinct binders" 2 (List.length ids)

(* ---------- rename ---------- *)

let test_strip () =
  let p = Parser.parse fig9 in
  let stripped, mapping = Rename.strip p in
  check_bool "values stripped" true (List.mem_assoc "values" mapping);
  check_bool "count stripped" true (List.mem_assoc "count" mapping);
  let printed = Printer.program_to_string stripped in
  let toks = Lexer.token_values printed in
  check_bool "method name survives" true (List.mem "count" toks);
  (* local "values" gone *)
  check_bool "no values" false (List.mem "values" toks)

let test_strip_keeps_fields () =
  let src = "class A { int total; void f(int x) { total = x; } }" in
  let stripped, _ = Rename.strip (Parser.parse src) in
  let toks = Lexer.token_values (Printer.program_to_string stripped) in
  check_bool "field kept" true (List.mem "total" toks);
  check_bool "param renamed" false (List.mem "x" toks)

let test_strip_roundtrip () =
  let p = Parser.parse fig9 in
  let stripped, mapping = Rename.strip p in
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  let restored = Rename.apply (fun n -> List.assoc_opt n inverse) stripped in
  check_bool "restored" true (Syntax.equal_program p restored)

(* ---------- property tests ---------- *)

(* Random MiniJava programs over the supported subset. *)
let gen_program : Syntax.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let ident = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 6) in
  let ty =
    oneof
      [
        return (Types.Prim "int");
        return (Types.Prim "boolean");
        return (Types.named "String");
        return (Types.named ~args:[ Types.named "Integer" ] "List");
        return (Types.Arr (Types.Prim "int"));
      ]
  in
  let lit =
    oneof
      [
        map (fun n -> Syntax.IntLit (string_of_int n)) (int_range 0 99);
        map (fun b -> Syntax.BoolLit b) bool;
        return Syntax.NullLit;
        map
          (fun s -> Syntax.StrLit s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
      ]
  in
  let expr =
    fix
      (fun self n ->
        if n <= 0 then oneof [ map (fun i -> Syntax.Ident i) ident; lit ]
        else
          oneof
            [
              map (fun i -> Syntax.Ident i) ident;
              lit;
              map2 (fun a b -> Syntax.Binary ("+", a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Syntax.Binary ("==", a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Syntax.Unary ("!", a)) (self (n - 1));
              map2 (fun f a -> Syntax.Call (None, "m" ^ f, [ a ])) ident (self (n - 1));
              map3
                (fun r f a -> Syntax.Call (Some (Syntax.Ident r), "m" ^ f, [ a ]))
                ident ident (self (n - 1));
              map2 (fun o i -> Syntax.Index (Syntax.Ident o, i)) ident (self (n - 1));
              map2 (fun o f -> Syntax.FieldAccess (o, "f" ^ f)) (self (n - 1)) ident;
              map2 (fun t a -> Syntax.New (t, [ a ])) ty (self (n - 1));
            ])
      3
  in
  let stmt =
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun e -> Syntax.ExprStmt e) expr;
              map3
                (fun t v e -> Syntax.LocalDecl (t, [ (v, Some e) ]))
                ty ident expr;
              map (fun e -> Syntax.Return (Some e)) expr;
            ]
        else
          oneof
            [
              map (fun e -> Syntax.ExprStmt e) expr;
              map3
                (fun t v e -> Syntax.LocalDecl (t, [ (v, Some e) ]))
                ty ident expr;
              map2 (fun c b -> Syntax.If (c, [ b ], None)) expr (self (n - 1));
              map2 (fun c b -> Syntax.While (c, [ b ])) expr (self (n - 1));
              map3
                (fun v it b -> Syntax.ForEach (Types.Prim "int", v, it, [ b ]))
                ident expr (self (n - 1));
            ])
      2
  in
  let meth =
    QCheck2.Gen.map2
      (fun name body ->
        {
          Syntax.m_modifiers = [ "public" ];
          m_ret = Types.Prim "void";
          m_name = "method" ^ name;
          m_params = [ (Types.Prim "int", "arg0") ];
          m_throws = [];
          m_body = body;
        })
      ident
      (list_size (int_range 1 5) stmt)
  in
  QCheck2.Gen.map
    (fun methods ->
      {
        Syntax.package = None;
        imports = [ "java.util.List" ];
        classes =
          [
            {
              Syntax.c_modifiers = [];
              c_name = "Gen";
              c_extends = None;
              c_implements = [];
              c_fields = [];
              c_methods = methods;
            };
          ];
      })
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 3) meth)

let prop_java_roundtrip =
  QCheck2.Test.make ~name:"printer/parser round-trip" ~count:300 gen_program
    (fun p ->
      let printed = Printer.program_to_string p in
      match Parser.parse printed with
      | p2 -> Syntax.equal_program p p2
      | exception Lexkit.Error _ -> false)

let prop_java_lower_total =
  QCheck2.Test.make ~name:"lowering total, binders consistent" ~count:300
    gen_program (fun p ->
      let tree = Lower.program p in
      let idx = Ast.Index.build tree in
      let tbl = Hashtbl.create 16 in
      let ok = ref true in
      for i = 0 to Ast.Index.size idx - 1 do
        match (Ast.Index.sort idx i, Ast.Index.value idx i) with
        | Some (Ast.Tree.Var id), Some v -> (
            match Hashtbl.find_opt tbl id with
            | Some v' -> if not (String.equal v v') then ok := false
            | None -> Hashtbl.add tbl id v)
        | _ -> ()
      done;
      !ok)

let prop_java_typed_lower_total =
  QCheck2.Test.make ~name:"typed lowering never fails" ~count:300 gen_program
    (fun p ->
      let tree = Lower.program ~typed:true p in
      Ast.Tree.size tree > 0)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "properties",
      qcheck [ prop_java_roundtrip; prop_java_lower_total; prop_java_typed_lower_total ]
    );
    ( "lexer",
      [
        Alcotest.test_case "literal kinds" `Quick test_lex_literals;
        Alcotest.test_case "no >> fusion" `Quick test_lex_no_shift_fusion;
      ] );
    ("types", [ Alcotest.test_case "type parsing" `Quick test_parse_type ]);
    ( "parser",
      [
        Alcotest.test_case "fig 9 count method" `Quick test_parse_fig9;
        Alcotest.test_case "decl vs expr stmt" `Quick test_decl_vs_expr;
        Alcotest.test_case "generics vs comparison" `Quick test_generics_vs_comparison;
        Alcotest.test_case "cast vs paren" `Quick test_cast_vs_paren;
        Alcotest.test_case "constructor" `Quick test_parse_constructor;
        Alcotest.test_case "classic for" `Quick test_parse_for_classic;
        Alcotest.test_case "try/catch/finally" `Quick test_parse_try;
        Alcotest.test_case "instanceof + ternary" `Quick test_parse_instanceof_ternary;
        Alcotest.test_case "modifiers and arrays" `Quick test_parse_field_and_static;
        Alcotest.test_case "syntax error" `Quick test_parse_error;
      ] );
    ("printer", [ Alcotest.test_case "round-trips" `Quick test_roundtrip ]);
    ( "typing",
      [
        Alcotest.test_case "literals" `Quick test_typing_literals;
        Alcotest.test_case "arithmetic and concat" `Quick test_typing_arith_and_concat;
        Alcotest.test_case "method calls" `Quick test_typing_calls;
        Alcotest.test_case "arrays, new, fields" `Quick test_typing_misc;
      ] );
    ( "lower",
      [
        Alcotest.test_case "binder merging" `Quick test_lower_binders;
        Alcotest.test_case "while-if-assign path" `Quick test_lower_flag_path;
        Alcotest.test_case "type tags" `Quick test_lower_type_tags;
        Alcotest.test_case "untyped has no tags" `Quick test_lower_untyped_has_no_tags;
        Alcotest.test_case "block scoping" `Quick test_lower_block_scoping;
      ] );
    ( "rename",
      [
        Alcotest.test_case "strip locals" `Quick test_strip;
        Alcotest.test_case "fields survive" `Quick test_strip_keeps_fields;
        Alcotest.test_case "strip round-trip" `Quick test_strip_roundtrip;
      ] );
  ]

let () = Alcotest.run "minijava" suite
