(* Chaos harness for the serve daemon: a mixed hostile workload —
   overload bursts (pipelined past max_queue), slow writers
   (slowloris), mid-line disconnects, injected faults (batcher delays,
   engine raises, torn replies, accept-time drops), hot reload under
   load, and drain-then-stop mid-traffic — with exact accounting.

   The safety properties asserted, connection by connection:
   - every line a client receives parses as JSON and echoes an id that
     client sent, exactly once (no duplicated, cross-wired or invented
     replies);
   - an unparseable line is only ever the LAST thing before EOF (a
     torn reply from a killed connection) — framing of a live
     connection is never corrupted;
   - a connection that stays alive receives exactly one reply per
     request; missing replies imply the connection died;
   - nothing hangs: every client wait is bounded (read timeouts +
     a global watchdog that fails the whole run).

   Scale is bounded by PIGEON_CHAOS_COUNT (requests per pipelining
   client; default 24, CI raises it). *)

module Netio = Serve.Netio

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chaos_count =
  match Sys.getenv_opt "PIGEON_CHAOS_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 24)
  | None -> 24

(* Fail the whole process if anything wedges: the daemon hanging is
   exactly the bug this suite exists to catch. *)
let with_watchdog seconds f =
  let done_ = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        let rec tick left =
          if Atomic.get done_ then ()
          else if left <= 0 then begin
            prerr_endline "chaos: watchdog deadline exceeded — daemon hang";
            exit 2
          end
          else begin
            Thread.delay 1.;
            tick (left - 1)
          end
        in
        tick seconds)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set done_ true;
      Thread.join th)
    f

(* ---------- shared models ---------- *)

let lang = Pigeon.Lang.javascript

let train_model ~n ~seed =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
  let sources = Corpus.Gen.generate_sources config Corpus.Render.Js in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
      sources
  in
  let config = { Crf.Train.default_config with Crf.Train.iterations = 3 } in
  Crf.Train.train ~config graphs

let temp_model name model =
  let path = Filename.temp_file ("pigeon-chaos-" ^ name) ".crf" in
  Crf.Serialize.save model path;
  path

(* Model A is what daemons start on; model B is what they reload to. *)
let model_a_path = lazy (temp_model "a" (train_model ~n:30 ~seed:77))
let model_b_path = lazy (temp_model "b" (train_model ~n:36 ~seed:99))

let engine_of path =
  Serve.Engine.create ~model_path:path ~model:(Crf.Serialize.load_exn path) ()

let temp_sock () =
  let path = Filename.temp_file "pigeon-chaos" ".sock" in
  Sys.remove path;
  path

let predict_line ~id code =
  Serve.Json.to_string
    (Serve.Json.Obj
       [ ("op", Serve.Json.Str "predict");
         ("id", Serve.Json.Num (float_of_int id));
         ("lang", Serve.Json.Str "JavaScript");
         ("code", Serve.Json.Str code) ])

let sample_codes =
  [| "function f(a, b) { var total = a + b; var msg = '' + total; return msg; }\n";
     "var count = 0; var next = count + 1; var last = next * 2;\n";
     "function g(x) { var acc = x; var tmp = acc + acc; return tmp; }\n";
     "var alpha = 3; var beta = alpha * 2; var gamma = beta - alpha;\n" |]

let hostile_code =
  "function f(){ return " ^ String.make 3_000 '(' ^ "1"
  ^ String.make 3_000 ')' ^ "; }\n"

(* ---------- per-connection accounting ---------- *)

type outcome = {
  mutable received : int;
  mutable conn_died : bool;
  mutable overloaded : int;
  mutable errors : int;  (** structured non-overloaded error replies *)
  mutable violations : string list;
}

let fresh_outcome () =
  { received = 0; conn_died = false; overloaded = 0; errors = 0;
    violations = [] }

let violate o fmt =
  Printf.ksprintf (fun s -> o.violations <- s :: o.violations) fmt

(* Pipelining client: send [ids] requests back to back, then drain
   replies. Returns the per-connection outcome; every framing/identity
   violation is recorded rather than raised so one bad client does not
   hide the others. *)
let pipelining_client ~sock ~ids ~line_of () =
  let o = fresh_outcome () in
  match
    Serve.Client.connect ~connect_timeout:10. ~read_timeout:30.
      ~retry:Serve.Client.default_retry (Serve.Client.Unix_sock sock)
  with
  | exception _ ->
      (* accept-drop fault, conn cap, or a daemon mid-stop: the
         connection never existed, so nothing was accepted *)
      o.conn_died <- true;
      o
  | c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let sent = ref [] in
      (try
         List.iter
           (fun id ->
             Serve.Client.send_line c (line_of id);
             sent := id :: !sent)
           ids
       with Unix.Unix_error _ -> o.conn_died <- true);
      let expected = List.length !sent in
      let seen = Hashtbl.create 16 in
      let rec drain () =
        if o.received >= expected || o.conn_died then ()
        else
          match Serve.Client.recv_line c with
          | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
              violate o "reply wait timed out with %d/%d received — hang?"
                o.received expected
          | exception Unix.Unix_error _ -> o.conn_died <- true
          | None -> o.conn_died <- true
          | Some line -> (
              match Serve.Json.parse line with
              | Error _ ->
                  (* A torn reply: legal only as the very last bytes
                     of a killed connection. *)
                  o.conn_died <- true;
                  (match Serve.Client.recv_line c with
                  | None -> ()
                  | Some next ->
                      violate o
                        "garbled line %S followed by more data %S — framing \
                         corrupted"
                        line next
                  | exception _ -> ())
              | Ok json ->
                  (match Serve.Json.int_field "id" json with
                  | None -> violate o "reply %S carries no int id" line
                  | Some id ->
                      if not (List.mem id !sent) then
                        violate o "reply id %d was never sent here" id
                      else if Hashtbl.mem seen id then
                        violate o "duplicate reply for id %d" id
                      else Hashtbl.add seen id ());
                  o.received <- o.received + 1;
                  (match
                     (Serve.Protocol.reply_ok line,
                      Serve.Protocol.reply_error line)
                   with
                  | true, _ -> ()
                  | false, Some e ->
                      if e.Serve.Protocol.kind = "overloaded" then
                        o.overloaded <- o.overloaded + 1
                      else o.errors <- o.errors + 1
                  | false, None ->
                      violate o "non-ok reply without structured error: %S"
                        line);
                  drain ())
      in
      drain ();
      if (not o.conn_died) && o.received <> expected then
        violate o "live connection got %d/%d replies" o.received expected;
      o

(* Slowloris: trickle half a request (raw fd — send_line always
   terminates lines), then stall past the idle timeout. The daemon
   must close the connection (best-effort timeout line first) — and
   promptly, not leak the reader. *)
let slow_writer ~sock ~idle () =
  let o = fresh_outcome () in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | exception Unix.Unix_error _ ->
      (* accept-drop fault or conn cap: that is a legal outcome *)
      o.conn_died <- true;
      o
  | () -> (
      (try ignore (Unix.write_substring fd "{\"op\":\"pred" 0 11)
       with Unix.Unix_error _ -> ());
      (* stall well past the idle budget, then verify the daemon shut
         us down rather than waiting forever *)
      let lr =
        Netio.line_reader ~idle_timeout:(Float.max 10. (idle *. 20.)) fd
      in
      match Netio.read_line lr with
      | Netio.Timeout ->
          violate o "daemon kept a stalled connection past its idle timeout";
          o
      | Netio.Eof -> o.conn_died <- true; o
      | Netio.Overflow -> violate o "overflow reading timeout reply"; o
      | Netio.Line line ->
          (match Serve.Protocol.reply_error line with
          | Some e when e.Serve.Protocol.kind = "timeout" -> ()
          | Some _ | None ->
              (* a torn line is acceptable — the conn is dying *)
              ());
          o.conn_died <- true;
          o)

(* Mid-line disconnect: write a request prefix and vanish. The daemon
   must simply drop the partial request. *)
let midline_disconnector ~sock () =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | exception Unix.Unix_error _ -> ()
  | () -> (
      try ignore (Unix.write_substring fd "{\"op\":\"predict\",\"id\":1,\"la" 0 26)
      with Unix.Unix_error _ -> ()));
  try Unix.close fd with Unix.Unix_error _ -> ()

let assert_no_violations name outcomes =
  let all = List.concat_map (fun o -> o.violations) outcomes in
  List.iter (fun v -> Printf.eprintf "%s: VIOLATION: %s\n%!" name v) all;
  check_int (name ^ ": safety violations") 0 (List.length all)

(* ---------- the mixed chaos run ---------- *)

let test_chaos_mixed () =
  with_watchdog 180 @@ fun () ->
  let sock = temp_sock () in
  let idle = 0.5 in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some sock;
      max_batch = 4;
      max_queue = 8;
      max_conns = 32;
      idle_timeout = idle;
      faults =
        {
          Serve.Faults.pre_batch_delay_ms = 2;
          engine_error_every = 7;
          torn_reply_every = 9;
          accept_drop_every = 5;
        };
    }
  in
  let engine = engine_of (Lazy.force model_a_path) in
  let pool = Parallel.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let t = Serve.Server.start ~pool engine cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop t;
      Serve.Server.wait t;
      if Sys.file_exists sock then Sys.remove sock)
  @@ fun () ->
  let line_of id =
    if id mod 5 = 2 then predict_line ~id hostile_code
    else if id mod 11 = 6 then
      (* similar without a w2v model: structured bad-request *)
      Serve.Json.to_string
        (Serve.Json.Obj
           [ ("op", Serve.Json.Str "similar");
             ("id", Serve.Json.Num (float_of_int id));
             ("word", Serve.Json.Str "count") ])
    else predict_line ~id sample_codes.(id mod Array.length sample_codes)
  in
  let n_pipeliners = 4 in
  let outcomes = Array.make (n_pipeliners + 2) (fresh_outcome ()) in
  let pipeliner k =
    let base = (k + 1) * 100_000 in
    let ids = List.init chaos_count (fun i -> base + i) in
    outcomes.(k) <- pipelining_client ~sock ~ids ~line_of ()
  in
  let slow k = outcomes.(n_pipeliners + k) <- slow_writer ~sock ~idle () in
  let threads =
    List.init n_pipeliners (fun k -> Thread.create pipeliner k)
    @ List.init 2 (fun k -> Thread.create slow k)
    @ List.init 2 (fun _ -> Thread.create (fun () -> midline_disconnector ~sock ()) ())
  in
  (* reload-under-load, against the fault storm: keep trying until a
     clean "reloaded" reply survives the torn-reply fault *)
  let reloaded = ref false in
  let reload_line =
    Serve.Json.to_string
      (Serve.Json.Obj
         [ ("op", Serve.Json.Str "reload"); ("id", Serve.Json.Num 1.);
           ("model", Serve.Json.Str (Lazy.force model_b_path)) ])
  in
  let attempts = ref 0 in
  while (not !reloaded) && !attempts < 20 do
    incr attempts;
    (match
       Serve.Client.connect ~connect_timeout:10. ~read_timeout:30.
         ~retry:Serve.Client.default_retry (Serve.Client.Unix_sock sock)
     with
    | exception _ -> ()
    | c ->
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        (match Serve.Client.request c reload_line with
        | Some r when Serve.Protocol.reply_ok r -> reloaded := true
        | Some _ | None -> ()
        | exception _ -> ()));
    if not !reloaded then Thread.delay 0.05
  done;
  List.iter Thread.join threads;
  check_bool "reload succeeded under chaos" true !reloaded;
  assert_no_violations "chaos" (Array.to_list outcomes);
  (* liveness summary + post-storm health check *)
  let total_recv =
    Array.fold_left (fun acc o -> acc + o.received) 0 outcomes
  in
  let total_over =
    Array.fold_left (fun acc o -> acc + o.overloaded) 0 outcomes
  in
  let died =
    Array.fold_left (fun acc o -> acc + if o.conn_died then 1 else 0) 0 outcomes
  in
  Printf.printf
    "chaos: %d replies received, %d overloaded, %d/%d connections died, \
     reload after %d attempt(s)\n%!"
    total_recv total_over died (Array.length outcomes) !attempts;
  check_bool "some requests were answered despite the storm" true
    (total_recv > 0);
  (* the daemon must still answer a clean ping (retry past the
     accept-drop and torn-reply faults) *)
  let alive = ref false in
  let tries = ref 0 in
  while (not !alive) && !tries < 10 do
    incr tries;
    (match
       Serve.Client.connect ~connect_timeout:10. ~read_timeout:10.
         ~retry:Serve.Client.default_retry (Serve.Client.Unix_sock sock)
     with
    | exception _ -> ()
    | c ->
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        (match Serve.Client.request c {|{"op":"ping","id":7}|} with
        | Some r when Serve.Protocol.reply_ok r -> alive := true
        | _ -> ()
        | exception _ -> ()))
  done;
  check_bool "daemon alive after the storm" true !alive;
  (* drain-then-stop under load: a final wave, stopped mid-flight *)
  let late = ref (fresh_outcome ()) in
  let wave =
    Thread.create
      (fun () ->
        let ids = List.init chaos_count (fun i -> 900_000 + i) in
        late := pipelining_client ~sock ~ids ~line_of ())
      ()
  in
  Thread.delay 0.05;
  Serve.Server.request_stop t;
  Serve.Server.wait t;
  Thread.join wave;
  (* replies observed before the stop still obey framing/identity *)
  assert_no_violations "chaos stop-wave" [ !late ];
  let s = Serve.Server.stats t in
  check_bool "batches ran" true (s.Serve.Protocol.batches > 0);
  check_bool "queue high-water bounded" true
    (s.Serve.Protocol.queue_hw <= cfg.Serve.Server.max_queue);
  check_bool "reload counted" true (s.Serve.Protocol.reloads >= 1)

(* ---------- deterministic overload burst ---------- *)

let test_overload_burst () =
  with_watchdog 120 @@ fun () ->
  let sock = temp_sock () in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some sock;
      max_batch = 1;
      max_queue = 2;
      (* only the deterministic batcher delay — no reply corruption *)
      faults =
        { Serve.Faults.disabled with Serve.Faults.pre_batch_delay_ms = 15 };
    }
  in
  let engine = engine_of (Lazy.force model_a_path) in
  let t = Serve.Server.start engine cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop t;
      Serve.Server.wait t;
      if Sys.file_exists sock then Sys.remove sock)
  @@ fun () ->
  let n = max 20 chaos_count in
  let ids = List.init n (fun i -> 1000 + i) in
  let line_of id = predict_line ~id sample_codes.(id mod Array.length sample_codes) in
  let o = pipelining_client ~sock ~ids ~line_of () in
  assert_no_violations "burst" [ o ];
  check_bool "connection survived the burst" false o.conn_died;
  check_int "every request answered exactly once" n o.received;
  check_bool "excess load was shed with structured errors" true
    (o.overloaded > 0);
  let s = Serve.Server.stats t in
  check_bool "stats.shed counted" true (s.Serve.Protocol.shed >= o.overloaded);
  check_bool "queue bounded" true
    (s.Serve.Protocol.queue_hw <= cfg.Serve.Server.max_queue)

(* ---------- reload under clean load: byte-identity ---------- *)

let test_reload_under_load () =
  with_watchdog 120 @@ fun () ->
  let a_path = Lazy.force model_a_path and b_path = Lazy.force model_b_path in
  let ref_a = engine_of a_path and ref_b = engine_of b_path in
  let probe id code =
    match Serve.Protocol.request_of_line (predict_line ~id code) with
    | Ok r -> r
    | Error _ -> assert false
  in
  (* reference replies for every (id, code) the clients will send *)
  let sock = temp_sock () in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some sock;
      max_batch = 4;
      max_queue = 0;
      (* unbounded: this test is about reloads, not sheds *)
    }
  in
  let pool = Parallel.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let t = Serve.Server.start ~pool (engine_of a_path) cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop t;
      Serve.Server.wait t;
      if Sys.file_exists sock then Sys.remove sock)
  @@ fun () ->
  let n_clients = 3 in
  let per_client = max 10 (chaos_count / 2) in
  let failures = Queue.create () in
  let fmutex = Mutex.create () in
  let fail msg =
    Mutex.lock fmutex;
    Queue.add msg failures;
    Mutex.unlock fmutex
  in
  let client k =
    let c = Serve.Client.connect_unix ~read_timeout:30. sock in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    for i = 0 to per_client - 1 do
      let id = (k * 1000) + i in
      let code = sample_codes.(id mod Array.length sample_codes) in
      match Serve.Client.request c (predict_line ~id code) with
      | None -> fail (Printf.sprintf "client %d: connection dropped" k)
      | exception e ->
          fail (Printf.sprintf "client %d: %s" k (Printexc.to_string e))
      | Some reply ->
          (* every reply is byte-identical to one of the two models'
             canonical replies — never an error, never a blend *)
          let expect_a = Serve.Engine.handle ref_a (probe id code) in
          let expect_b = Serve.Engine.handle ref_b (probe id code) in
          if
            (not (String.equal reply expect_a))
            && not (String.equal reply expect_b)
          then
            fail
              (Printf.sprintf
                 "client %d req %d: reply matches neither model: %s" k i reply)
    done
  in
  let threads = List.init n_clients (fun k -> Thread.create client k) in
  (* fire the reload mid-burst over the wire *)
  Thread.delay 0.05;
  let rc = Serve.Client.connect_unix ~read_timeout:30. sock in
  (match
     Serve.Client.request rc
       (Serve.Json.to_string
          (Serve.Json.Obj
             [ ("op", Serve.Json.Str "reload"); ("id", Serve.Json.Num 9.);
               ("model", Serve.Json.Str b_path) ]))
   with
  | Some r ->
      Alcotest.(check string)
        "reloaded reply" {|{"id":9,"ok":true,"reloaded":true}|} r
  | None -> Alcotest.fail "no reload reply");
  Serve.Client.close rc;
  List.iter Thread.join threads;
  Queue.iter (fun m -> Printf.eprintf "reload-under-load: %s\n%!" m) failures;
  check_int "no failures" 0 (Queue.length failures);
  (* post-reload: the daemon serves model B, byte-identical to a fresh
     engine loaded from the new file *)
  let c = Serve.Client.connect_unix ~read_timeout:30. sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let code = sample_codes.(0) in
  (match Serve.Client.request c (predict_line ~id:4242 code) with
  | Some reply ->
      Alcotest.(check string)
        "post-reload byte-identity"
        (Serve.Engine.handle ref_b (probe 4242 code))
        reply
  | None -> Alcotest.fail "daemon dropped the post-reload probe");
  let s = Serve.Server.stats t in
  check_bool "reload counted" true (s.Serve.Protocol.reloads >= 1)

(* ---------- registry thrash: eviction + revival under load ---------- *)

let test_registry_eviction_under_load () =
  with_watchdog 120 @@ fun () ->
  let a_path = Lazy.force model_a_path and b_path = Lazy.force model_b_path in
  let sock = temp_sock () in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some sock;
      max_batch = 4;
      max_queue = 0;
      (* unbounded queue, no faults: accounting must be strict *)
    }
  in
  (* a one-byte mapped budget: at most one named entry stays mapped,
     so every request naming the other one forces an evict + revive
     cycle while requests against the old snapshot are in flight *)
  let engine =
    Serve.Engine.create ~model_path:a_path ~max_mapped_bytes:1
      ~model:(Crf.Serialize.load_exn a_path) ()
  in
  let pool = Parallel.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  let t = Serve.Server.start ~pool engine cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop t;
      Serve.Server.wait t;
      if Sys.file_exists sock then Sys.remove sock)
  @@ fun () ->
  (* preload two named entries over the wire (both from model B's
     file: distinct registry entries, identical predictions) *)
  let rc = Serve.Client.connect_unix ~read_timeout:30. sock in
  let load id name =
    let line =
      Serve.Json.to_string
        (Serve.Json.Obj
           [ ("op", Serve.Json.Str "reload");
             ("id", Serve.Json.Num (float_of_int id));
             ("name", Serve.Json.Str name);
             ("model", Serve.Json.Str b_path) ])
    in
    match Serve.Client.request rc line with
    | Some r when Serve.Protocol.reply_ok r -> ()
    | Some r -> Alcotest.failf "load %s rejected: %s" name r
    | None -> Alcotest.failf "no reply loading %s" name
  in
  load 1 "b";
  load 2 "c";
  Serve.Client.close rc;
  (* mixed load: every third request names b or c; the rest run the
     default. Exactly-once accounting via the pipelining client. *)
  let line_of id =
    let code = sample_codes.(id mod Array.length sample_codes) in
    let fields =
      [ ("op", Serve.Json.Str "predict");
        ("id", Serve.Json.Num (float_of_int id));
        ("lang", Serve.Json.Str "JavaScript");
        ("code", Serve.Json.Str code) ]
    in
    let fields =
      match id mod 3 with
      | 1 -> fields @ [ ("model", Serve.Json.Str "b") ]
      | 2 -> fields @ [ ("model", Serve.Json.Str "c") ]
      | _ -> fields
    in
    Serve.Json.to_string (Serve.Json.Obj fields)
  in
  let n_clients = 4 in
  let outcomes = Array.make n_clients (fresh_outcome ()) in
  let client k =
    let base = (k + 1) * 100_000 in
    let ids = List.init chaos_count (fun i -> base + i) in
    outcomes.(k) <- pipelining_client ~sock ~ids ~line_of ()
  in
  let threads = List.init n_clients (fun k -> Thread.create client k) in
  (* reload-by-name mid-storm: re-read entry b from disk while
     requests naming it are in flight *)
  let reload_ok = ref 0 in
  for i = 1 to 3 do
    Thread.delay 0.05;
    match Serve.Client.connect_unix ~read_timeout:30. sock with
    | exception _ -> ()
    | c ->
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        let line =
          Serve.Json.to_string
            (Serve.Json.Obj
               [ ("op", Serve.Json.Str "reload");
                 ("id", Serve.Json.Num (float_of_int (500 + i)));
                 ("name", Serve.Json.Str "b");
                 ("model", Serve.Json.Str b_path) ])
        in
        (match Serve.Client.request c line with
        | Some r when Serve.Protocol.reply_ok r -> incr reload_ok
        | Some _ | None -> ())
  done;
  List.iter Thread.join threads;
  check_bool "reload-by-name succeeded under load" true (!reload_ok > 0);
  assert_no_violations "registry" (Array.to_list outcomes);
  Array.iteri
    (fun k o ->
      check_bool (Printf.sprintf "client %d survived" k) false o.conn_died;
      check_int
        (Printf.sprintf "client %d: every request answered exactly once" k)
        chaos_count o.received;
      check_int (Printf.sprintf "client %d: no error replies" k) 0 o.errors;
      check_int (Printf.sprintf "client %d: nothing shed" k) 0 o.overloaded)
    outcomes;
  (* eviction actually thrashed, and the registry stayed coherent *)
  let s = Serve.Server.stats t in
  let models = s.Serve.Protocol.models in
  check_int "three registry entries" 3 (List.length models);
  let evictions =
    List.fold_left (fun acc m -> acc + m.Serve.Protocol.ms_evictions) 0 models
  in
  check_bool "evictions happened under load" true (evictions > 0);
  List.iter
    (fun m ->
      if m.Serve.Protocol.ms_name = "default" then begin
        check_bool "default never evicted" true
          (m.Serve.Protocol.ms_evictions = 0);
        check_bool "default stays loaded" true m.Serve.Protocol.ms_loaded
      end)
    models;
  (* post-storm: named predictions still byte-identical to a fresh
     engine on the same file, whichever entry ended up evicted *)
  let ref_b = engine_of b_path in
  let probe name id =
    let code = sample_codes.(0) in
    let line =
      Serve.Json.to_string
        (Serve.Json.Obj
           [ ("op", Serve.Json.Str "predict");
             ("id", Serve.Json.Num (float_of_int id));
             ("lang", Serve.Json.Str "JavaScript");
             ("code", Serve.Json.Str code);
             ("model", Serve.Json.Str name) ])
    in
    let c = Serve.Client.connect_unix ~read_timeout:30. sock in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    match Serve.Client.request c line with
    | Some reply ->
        let expect =
          match
            Serve.Protocol.request_of_line (predict_line ~id code)
          with
          | Ok r -> Serve.Engine.handle ref_b r
          | Error _ -> assert false
        in
        Alcotest.(check string)
          (Printf.sprintf "post-storm %s byte-identity" name)
          expect reply
    | None -> Alcotest.failf "daemon dropped the %s probe" name
  in
  probe "b" 7001;
  probe "c" 7002

let () =
  Alcotest.run "chaos"
    [
      ( "serve",
        [
          Alcotest.test_case "overload burst sheds, answers everything" `Quick
            test_overload_burst;
          Alcotest.test_case "reload under load is byte-exact" `Quick
            test_reload_under_load;
          Alcotest.test_case "registry eviction under load" `Quick
            test_registry_eviction_under_load;
          Alcotest.test_case "mixed hostile storm" `Quick test_chaos_mixed;
        ] );
    ]
