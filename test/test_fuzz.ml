(* Fuzz and fault-injection suite: the ingestion contract says every
   front-end and model loader is *total* — arbitrary bytes in,
   structured diagnostic or success out. Nothing may crash, hang,
   overflow the stack, or leak an unclassified exception.

   Property counts scale with PIGEON_FUZZ_COUNT (default 300 per
   property) so CI can run a bounded smoke pass while a longer local
   run digs deeper. *)

let count =
  match Option.bind (Sys.getenv_opt "PIGEON_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 300

let check_int = Alcotest.(check int)

(* ---------- subjects ---------- *)

let front_ends =
  [
    ("minijs", fun src -> ignore (Minijs.Parser.parse src));
    ("minijava", fun src -> ignore (Minijava.Parser.parse src));
    ("minipython", fun src -> ignore (Minipython.Parser.parse src));
    ("minicsharp", fun src -> ignore (Minicsharp.Parser.parse src));
  ]

(* The property under test: Lexkit.protect classifies every failure;
   an exception it re-raises is exactly the kind of bug we hunt. *)
let total parse src =
  match Lexkit.protect (fun () -> parse src) with Ok _ | Error _ -> true

(* ---------- generators ---------- *)

let print_input s =
  let s = if String.length s > 160 then String.sub s 0 160 ^ "..." else s in
  String.escaped s

let bytes_arb =
  QCheck.make ~print:print_input
    QCheck.Gen.(string_size ~gen:char (int_bound 1024))

(* Token soup: syntactically plausible fragments glued at random —
   reaches far deeper into the parsers than raw bytes do. *)
let fragments =
  [
    "if"; "else"; "while"; "for"; "function"; "class"; "def"; "return";
    "var"; "new"; "try"; "catch"; "not"; "in"; "("; ")"; "{"; "}"; "[";
    "]"; ";"; ":"; ","; "."; "="; "=="; "!"; "!="; "<="; "+"; "-"; "*";
    "/"; "%"; "&&"; "||"; "x"; "foo"; "Bar"; "this"; "0"; "42"; "1.5";
    "0x"; "\""; "'"; "\\"; "\\n"; "\n"; "\t"; "    "; "#"; "//"; "/*";
    "*/"; "\x00"; "\xff"; "\xc3"; " ";
  ]

let soup_arb =
  QCheck.make ~print:print_input
    QCheck.Gen.(
      map (String.concat "") (list_size (int_bound 120) (oneofl fragments)))

(* Mutated valid programs: take a real generated source and damage it —
   delete a byte, insert garbage, truncate, or duplicate a slice. *)
let mutate src op a b c =
  let n = String.length src in
  if n = 0 then String.make 1 c
  else
    let p = a mod n in
    match op with
    | 0 -> String.sub src 0 p ^ String.sub src (p + 1) (n - p - 1)
    | 1 -> String.sub src 0 p ^ String.make 1 c ^ String.sub src p (n - p)
    | 2 -> String.sub src 0 p
    | _ ->
        let q = b mod n in
        let lo = min p q and hi = max p q in
        String.sub src 0 hi ^ String.sub src lo (hi - lo)
        ^ String.sub src hi (n - hi)

let mutated_arb seeds =
  let seeds = Array.of_list seeds in
  QCheck.make ~print:print_input
    QCheck.Gen.(
      int_bound (Array.length seeds - 1) >>= fun i ->
      int_bound 3 >>= fun op ->
      int_bound 100_000 >>= fun a ->
      int_bound 100_000 >>= fun b ->
      char >>= fun c -> return (mutate seeds.(i) op a b c))

let corpus_sources render =
  List.map snd
    (Corpus.Gen.generate_sources
       { Corpus.Gen.default with Corpus.Gen.n_files = 8; seed = 42 }
       render)

let renders =
  [
    ("minijs", Corpus.Render.Js);
    ("minijava", Corpus.Render.Java);
    ("minipython", Corpus.Render.Python);
    ("minicsharp", Corpus.Render.Csharp);
  ]

(* ---------- front-end properties ---------- *)

let front_end_tests =
  List.concat_map
    (fun (name, parse) ->
      [
        QCheck.Test.make ~count ~name:(name ^ " total on random bytes")
          bytes_arb (total parse);
        QCheck.Test.make ~count ~name:(name ^ " total on token soup")
          soup_arb (total parse);
        QCheck.Test.make ~count
          ~name:(name ^ " total on mutated programs")
          (mutated_arb (corpus_sources (List.assoc name renders)))
          (total parse);
      ])
    front_ends

(* ---------- model-loader properties ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let saved_text save model =
  let path = Filename.temp_file "pigeon_fuzz" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      save model path;
      read_file path)

let saved_via to_channel model =
  let path = Filename.temp_file "pigeon_fuzz" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> to_channel model oc);
      read_file path)

let crf_model =
  lazy
    (let mk_node id gold kind = { Crf.Graph.id; gold; kind } in
     let g =
       Crf.Graph.make
         ~nodes:[ mk_node 0 "done" `Unknown; mk_node 1 "0" `Known ]
         ~factors:
           [
             Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"Assign=\xe2\x86\x93Number";
             Crf.Graph.unary ~n:0 ~rel:"loop guard";
           ]
     in
     let config =
       { Crf.Train.default_config with Crf.Train.iterations = 2 }
     in
     Crf.Train.train ~config [ g; g ])

let w2v_model =
  lazy
    (let pairs =
       [ ("count", "i"); ("count", "n"); ("done", "flag"); ("i", "count") ]
     in
     let config =
       { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 2 }
     in
     Word2vec.Sgns.train ~config pairs)

(* [save] writes the v3 binary format; the v2 text writers are kept so
   mutations of both formats stay under fuzz. *)
let crf_model_text =
  lazy (saved_text Crf.Serialize.save (Lazy.force crf_model))

let crf_model_text_v2 =
  lazy (saved_via Crf.Serialize.to_channel_v2 (Lazy.force crf_model))

let w2v_model_text =
  lazy (saved_text Word2vec.Serialize.save (Lazy.force w2v_model))

let w2v_model_text_v2 =
  lazy (saved_via Word2vec.Serialize.to_channel_v2 (Lazy.force w2v_model))

let loader_total load s = match load s with Ok _ | Error _ -> true

let loader_tests =
  [
    QCheck.Test.make ~count ~name:"crf loader total on random bytes" bytes_arb
      (loader_total (Crf.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"crf loader total on mutated v3 models"
      (mutated_arb [ Lazy.force crf_model_text ])
      (loader_total (Crf.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"crf loader total on mutated v2 text models"
      (mutated_arb [ Lazy.force crf_model_text_v2 ])
      (loader_total (Crf.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"w2v loader total on random bytes" bytes_arb
      (loader_total (Word2vec.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"w2v loader total on mutated v3 models"
      (mutated_arb [ Lazy.force w2v_model_text ])
      (loader_total (Word2vec.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"w2v loader total on mutated v2 text models"
      (mutated_arb [ Lazy.force w2v_model_text_v2 ])
      (loader_total (Word2vec.Serialize.of_string ~source:"<fuzz>"));
  ]

(* A correct magic line followed by arbitrary bytes reaches the binary
   section readers directly — the layer where an unchecked count or an
   overflowing bound becomes a crash instead of a diagnostic. *)
let v3_body_arb magic =
  QCheck.make ~print:print_input
    QCheck.Gen.(
      map (fun s -> magic ^ s) (string_size ~gen:char (int_bound 2048)))

(* The file-based [load] path adds I/O classification on top of
   [of_string]; drive it through one reused temp file. *)
let load_file_total load =
  let path = lazy (Filename.temp_file "pigeon_fuzz_load" ".model") in
  fun s ->
    let path = Lazy.force path in
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc;
    match load path with Ok _ | Error _ -> true

let v3_loader_tests =
  [
    QCheck.Test.make ~count ~name:"crf loader total on v3 magic + random body"
      (v3_body_arb "pigeon-crf-model 3\n")
      (loader_total (Crf.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"w2v loader total on v3 magic + random body"
      (v3_body_arb "pigeon-w2v-model 3\n")
      (loader_total (Word2vec.Serialize.of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"crf load (file) total on random bytes"
      bytes_arb
      (load_file_total Crf.Serialize.load);
    QCheck.Test.make ~count ~name:"w2v load (file) total on v3 magic + random body"
      (v3_body_arb "pigeon-w2v-model 3\n")
      (load_file_total Word2vec.Serialize.load);
  ]

(* ---------- serve request-line properties ---------- *)

let request_total s =
  match Serve.Protocol.request_of_line s with Ok _ | Error _ -> true

let json_fragments =
  [
    "{"; "}"; "["; "]"; ":"; ","; "\""; "op"; "predict"; "similar"; "ping";
    "id"; "lang"; "code"; "word"; "k"; "true"; "false"; "null"; "1"; "-";
    "1e308"; "0.5"; "\\u0041"; "\\"; "\\n"; "\xc3\xa9"; "\x00"; " "; "\t";
  ]

let json_soup_arb =
  QCheck.make ~print:print_input
    QCheck.Gen.(
      map (String.concat "") (list_size (int_bound 80) (oneofl json_fragments)))

let serve_tests =
  [
    QCheck.Test.make ~count ~name:"request_of_line total on random bytes"
      bytes_arb request_total;
    QCheck.Test.make ~count ~name:"request_of_line total on JSON soup"
      json_soup_arb request_total;
    QCheck.Test.make ~count ~name:"json parse total on JSON soup" json_soup_arb
      (fun s -> match Serve.Json.parse s with Ok _ | Error _ -> true);
    QCheck.Test.make ~count ~name:"json print/parse round-trip" json_soup_arb
      (fun s ->
        match Serve.Json.parse s with
        | Error _ -> true
        | Ok v -> (
            let printed = Serve.Json.to_string v in
            match Serve.Json.parse printed with
            | Ok v' -> Serve.Json.to_string v' = printed
            | Error e ->
                QCheck.Test.fail_reportf "canonical form rejected: %s" e));
  ]

(* ---------- deterministic pathological inputs ---------- *)

let expect_kind name parse src kind =
  match Lexkit.protect (fun () -> parse src) with
  | Error d when d.Lexkit.Diag.kind = kind -> ()
  | Error d ->
      Alcotest.failf "%s: expected %s, got %s" name
        (Lexkit.Diag.kind_name kind)
        (Lexkit.Diag.to_string d)
  | Ok _ -> Alcotest.failf "%s: pathological input accepted" name

let expect_structured name parse src =
  if not (total parse src) then Alcotest.failf "%s: escaped exception" name

let test_paren_bomb () =
  let bomb = String.make 20_000 '(' in
  expect_kind "minijs"
    (fun s -> ignore (Minijs.Parser.parse s))
    bomb Lexkit.Diag.Depth_limit_exceeded;
  expect_kind "minipython"
    (fun s -> ignore (Minipython.Parser.parse s))
    bomb Lexkit.Diag.Depth_limit_exceeded;
  (* Java and C# reject a top-level "(" before it can nest; any
     structured refusal is fine. *)
  List.iter
    (fun (name, parse) -> expect_structured name parse bomb)
    front_ends

let test_unary_chains () =
  expect_kind "minijs bangs"
    (fun s -> ignore (Minijs.Parser.parse s))
    (String.make 50_000 '!' ^ "x;")
    Lexkit.Diag.Depth_limit_exceeded;
  expect_kind "minipython nots"
    (fun s -> ignore (Minipython.Parser.parse s))
    (String.concat "" (List.init 20_000 (fun _ -> "not ")) ^ "x")
    Lexkit.Diag.Depth_limit_exceeded;
  let ifs = String.concat "" (List.init 20_000 (fun _ -> "if(x)")) ^ ";" in
  List.iter (fun (name, parse) -> expect_structured name parse ifs) front_ends

let test_megabyte_identifier () =
  let src = String.make 1_000_000 'a' in
  List.iter (fun (name, parse) -> expect_structured name parse src) front_ends

let test_size_limit () =
  let src = String.make (9 * 1024 * 1024) 'a' in
  List.iter
    (fun (name, parse) ->
      expect_kind name parse src Lexkit.Diag.Size_limit_exceeded)
    front_ends

let test_unterminated_string () =
  expect_kind "minijs"
    (fun s -> ignore (Minijs.Parser.parse s))
    "var s = \"abc" Lexkit.Diag.Parse_error;
  expect_kind "minipython"
    (fun s -> ignore (Minipython.Parser.parse s))
    "s = 'abc" Lexkit.Diag.Parse_error

let test_loader_pathological () =
  let giant_line = String.make 1_000_000 'a' in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        "crf loader total" true
        (loader_total (Crf.Serialize.of_string ~source:"<t>") s);
      Alcotest.(check bool)
        "w2v loader total" true
        (loader_total (Word2vec.Serialize.of_string ~source:"<t>") s))
    [
      "";
      "\n\n\n";
      giant_line;
      "pigeon-crf-model 99\n";
      "\x00\x01\x02";
      (* v3 magic with empty, truncated, or garbage binary bodies *)
      "pigeon-crf-model 3\n";
      "pigeon-w2v-model 3\n";
      "pigeon-crf-model 3\n\x01\x08";
      "pigeon-crf-model 3\n" ^ String.make 64 '\xff';
      "pigeon-w2v-model 3\n" ^ String.make 64 '\x00';
    ]

(* Every single-byte corruption of a v3 file must be rejected with a
   structured diagnostic: framing errors catch structural damage, the
   end-section checksum catches flips inside float or count payloads
   that framing alone cannot see. *)
let test_v3_bit_flips () =
  let flip_all name load text =
    String.iteri
      (fun i _ ->
        let b = Bytes.of_string text in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
        match load (Bytes.to_string b) with
        | Ok _ -> Alcotest.failf "%s: flipped byte %d accepted" name i
        | Error d ->
            if d.Lexkit.Diag.kind <> Lexkit.Diag.Corrupt_model then
              Alcotest.failf "%s: flipped byte %d: unexpected %s" name i
                (Lexkit.Diag.to_string d))
      text
  in
  flip_all "crf"
    (Crf.Serialize.of_string ~source:"<flip>")
    (Lazy.force crf_model_text);
  flip_all "w2v"
    (Word2vec.Serialize.of_string ~source:"<flip>")
    (Lazy.force w2v_model_text)

(* ---------- training checkpoints ---------- *)

(* Checkpoint images carry raw float matrices and a resume cursor; a
   hostile or damaged one must never crash the loader or resume from a
   mangled cursor. Same discipline as models: loaders are total, and
   every single-byte corruption is a structured [Corrupt_model]. *)
let crf_ckpt_text =
  lazy
    (let m = Lazy.force crf_model in
     Crf.Serialize.checkpoint_to_string ~config:m.Crf.Train.config ~next_it:1
       ~next_shard:0 ~n_shards:2 ~jobs:1 m.Crf.Train.fast)

let w2v_ckpt_text =
  lazy
    (let config =
       { Word2vec.Sgns.default_config with Word2vec.Sgns.dim = 4; epochs = 2 }
     in
     let words = Word2vec.Vocab.of_items [ ("count", 3); ("i", 2) ] in
     let contexts = Word2vec.Vocab.of_items [ ("c0", 3); ("c1", 2) ] in
     let image = ref "" in
     ignore
       (Word2vec.Sgns.train_stream ~config ~words ~contexts
          ~shard_sizes:[| 3 |]
          ~pairs_of_shard:(fun _ -> [| (0, 0); (0, 1); (1, 0) |])
          ~on_shard:(fun ~epoch:_ ~shard:_ ck ->
            if !image = "" then
              image := Word2vec.Serialize.checkpoint_to_string ck)
          ());
     !image)

let ckpt_loader_tests =
  [
    QCheck.Test.make ~count ~name:"crf checkpoint loader total on random bytes"
      bytes_arb
      (loader_total (Crf.Serialize.checkpoint_of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count
      ~name:"crf checkpoint loader total on mutated checkpoints"
      (mutated_arb [ Lazy.force crf_ckpt_text ])
      (loader_total (Crf.Serialize.checkpoint_of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count ~name:"w2v checkpoint loader total on random bytes"
      bytes_arb
      (loader_total (Word2vec.Serialize.checkpoint_of_string ~source:"<fuzz>"));
    QCheck.Test.make ~count
      ~name:"w2v checkpoint loader total on mutated checkpoints"
      (mutated_arb [ Lazy.force w2v_ckpt_text ])
      (loader_total (Word2vec.Serialize.checkpoint_of_string ~source:"<fuzz>"));
  ]

let test_checkpoint_bit_flips () =
  let flip_all name load text =
    String.iteri
      (fun i _ ->
        let b = Bytes.of_string text in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
        match load (Bytes.to_string b) with
        | Ok _ -> Alcotest.failf "%s: flipped byte %d accepted" name i
        | Error d ->
            if d.Lexkit.Diag.kind <> Lexkit.Diag.Corrupt_model then
              Alcotest.failf "%s: flipped byte %d: unexpected %s" name i
                (Lexkit.Diag.to_string d))
      text
  in
  flip_all "crf-ckpt"
    (Crf.Serialize.checkpoint_of_string ~source:"<flip>")
    (Lazy.force crf_ckpt_text);
  flip_all "w2v-ckpt"
    (Word2vec.Serialize.checkpoint_of_string ~source:"<flip>")
    (Lazy.force w2v_ckpt_text)

(* ---------- shard files ---------- *)

(* Every single-byte corruption of a shard file must surface as a
   structured [Corrupt_model] when the shard is read — never a crash,
   never silently different records. *)
let test_shard_bit_flips () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pigeon-fuzz-shard-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let w =
        Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Pairs
          ~records_per_shard:16 ()
      in
      for i = 0 to 9 do
        Corpus.Shard.add_pair w
          (Corpus.Shard.intern w (Printf.sprintf "w%d" i))
          (Corpus.Shard.intern w (Printf.sprintf "c%d" (i mod 3)))
      done;
      ignore (Corpus.Shard.finish w);
      let shard0 = Filename.concat dir "shard-0000.psh" in
      let pristine =
        let ic = open_in_bin shard0 in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      String.iteri
        (fun i _ ->
          let b = Bytes.of_string pristine in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
          let oc = open_out_bin shard0 in
          output_bytes oc b;
          close_out oc;
          let set = Corpus.Shard.open_set dir in
          match Corpus.Shard.pairs set 0 with
          | _ -> Alcotest.failf "shard: flipped byte %d accepted" i
          | exception Lexkit.Diag.Error d ->
              if d.Lexkit.Diag.kind <> Lexkit.Diag.Corrupt_model then
                Alcotest.failf "shard: flipped byte %d: unexpected %s" i
                  (Lexkit.Diag.to_string d))
        pristine)

(* ---------- end-to-end: corrupt corpus, exact skip tally ---------- *)

let test_corrupt_corpus_training () =
  let lang = Pigeon.Lang.javascript in
  let sources =
    Corpus.Gen.generate_sources
      { Corpus.Gen.default with Corpus.Gen.n_files = 20; seed = 13 }
      lang.Pigeon.Lang.render_lang
  in
  let train =
    List.mapi
      (fun i (p, s) -> if i mod 10 = 0 then (p, "\x00 broken " ^ s) else (p, s))
      sources
  in
  let n_bad = List.length (List.filter (fun (_, s) -> s.[0] = '\x00') train) in
  let test = List.filteri (fun i _ -> i mod 10 <> 0) sources in
  let crf_config = { Crf.Train.default_config with Crf.Train.iterations = 2 } in
  let r =
    Pigeon.Task.run_crf ~crf_config ~lang ~policy:Pigeon.Graphs.Locals ~train
      ~test ()
  in
  let skips = r.Pigeon.Task.train_skips in
  check_int "attempted every file" (List.length train)
    skips.Pigeon.Ingest.attempted;
  check_int "exact skip tally" n_bad
    (List.length skips.Pigeon.Ingest.skipped);
  check_int "succeeded the rest"
    (List.length train - n_bad)
    skips.Pigeon.Ingest.succeeded;
  check_int "clean test corpus" 0
    (List.length r.Pigeon.Task.test_skips.Pigeon.Ingest.skipped)

(* ---------- suite ---------- *)

let () =
  Alcotest.run "fuzz"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          (front_end_tests @ loader_tests @ v3_loader_tests
         @ ckpt_loader_tests @ serve_tests) );
      ( "pathological",
        [
          Alcotest.test_case "paren bomb" `Quick test_paren_bomb;
          Alcotest.test_case "unary chains" `Quick test_unary_chains;
          Alcotest.test_case "megabyte identifier" `Quick
            test_megabyte_identifier;
          Alcotest.test_case "size limit" `Quick test_size_limit;
          Alcotest.test_case "unterminated string" `Quick
            test_unterminated_string;
          Alcotest.test_case "loader pathological" `Quick
            test_loader_pathological;
          Alcotest.test_case "v3 single-byte corruption" `Quick
            test_v3_bit_flips;
          Alcotest.test_case "checkpoint single-byte corruption" `Quick
            test_checkpoint_bit_flips;
          Alcotest.test_case "shard single-byte corruption" `Quick
            test_shard_bit_flips;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "corrupt corpus, exact tally" `Quick
            test_corrupt_corpus_training;
        ] );
    ]
