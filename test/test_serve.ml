(* Tests for the serve stack: the JSON codec, the wire protocol, the
   request engine's isolation contract (hostile requests get structured
   errors, never exceptions), and a real daemon over a Unix socket with
   concurrent clients. The byte-identity checks pin the determinism
   contract: a jobs=1 daemon replies with exactly the bytes
   Engine.handle produces for the same request. *)

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ---------- json codec ---------- *)

let roundtrip s =
  match Serve.Json.parse s with
  | Ok v -> Serve.Json.to_string v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_roundtrip () =
  check_string "object" {|{"a":1,"b":[true,null,"x"]}|}
    (roundtrip {| { "a" : 1, "b" : [ true, null, "x" ] } |});
  check_string "nested" {|[[[]],{"k":{"v":-2.5}}]|}
    (roundtrip {|[[[]],{"k":{"v":-2.5}}]|});
  check_string "escapes" "{\"s\":\"a\\\"b\\\\c\\nd\"}"
    (roundtrip "{\"s\":\"a\\\"b\\\\c\\nd\"}");
  (* \u escapes decode to UTF-8 and re-encode raw (canonical form). *)
  check_string "unicode escape" "\"\xc3\xa9\"" (roundtrip {|"é"|});
  check_string "integral floats print as ints" {|[0,-3,10000000]|}
    (roundtrip {|[0.0,-3.0,1e7]|})

let test_json_rejects () =
  let bad s =
    match Serve.Json.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "[1] trailing";
  bad "\"raw \x01 control\"";
  bad "\"unterminated";
  bad "nul";
  bad (String.make 10_000 '[');
  (* totality on arbitrary bytes, not just structured near-misses *)
  let st = Random.State.make [| 0x5e71 |] in
  for _ = 1 to 500 do
    let n = Random.State.int st 64 in
    let s = String.init n (fun _ -> Char.chr (Random.State.int st 256)) in
    match Serve.Json.parse s with Ok _ | Error _ -> ()
  done

let test_json_accessors () =
  let v =
    match Serve.Json.parse {|{"op":"predict","id":7,"deep":{"k":3}}|} with
    | Ok v -> v
    | Error e -> Alcotest.fail e
  in
  check_bool "member" true (Serve.Json.member "op" v <> None);
  check_string "string_field" "predict"
    (Option.get (Serve.Json.string_field "op" v));
  check_int "int_field" 7 (Option.get (Serve.Json.int_field "id" v));
  check_bool "missing" true (Serve.Json.member "nope" v = None)

(* ---------- protocol ---------- *)

let test_request_parse () =
  let ok line =
    match Serve.Protocol.request_of_line line with
    | Ok r -> r
    | Error (_, e) -> Alcotest.failf "%S rejected: %s" line e.Serve.Protocol.msg
  in
  (match ok {|{"op":"predict","id":1,"lang":"JavaScript","code":"var x;"}|} with
  | Serve.Protocol.Predict { lang; code; _ } ->
      check_string "lang" "JavaScript" lang;
      check_string "code" "var x;" code
  | _ -> Alcotest.fail "expected Predict");
  (* op defaults to predict when code is present *)
  (match ok {|{"id":2,"lang":"JavaScript","code":"var y;"}|} with
  | Serve.Protocol.Predict _ -> ()
  | _ -> Alcotest.fail "expected Predict default");
  (match ok {|{"op":"ping"}|} with
  | Serve.Protocol.Ping _ -> ()
  | _ -> Alcotest.fail "expected Ping");
  let err line =
    match Serve.Protocol.request_of_line line with
    | Ok _ -> Alcotest.failf "%S unexpectedly accepted" line
    | Error (id, e) -> (id, e)
  in
  let _, e = err "not json at all" in
  check_string "bad-request kind" "bad-request" e.Serve.Protocol.kind;
  (* id survives even when the request is rejected *)
  let id, _ = err {|{"op":"similar","id":42}|} in
  check_bool "id carried" true (id = Serve.Json.Num 42.);
  let _, e = err {|{"op":"similar","id":1,"word":"x","k":0}|} in
  check_string "k range" "bad-request" e.Serve.Protocol.kind;
  (* session ops *)
  (match
     ok {|{"op":"open","id":9,"session":"b.js","lang":"JavaScript","code":"var x;"}|}
   with
  | Serve.Protocol.Open { name; lang; _ } ->
      check_string "session name" "b.js" name;
      check_string "open lang" "JavaScript" lang
  | _ -> Alcotest.fail "expected Open");
  (match ok {|{"op":"edit","code":"var y;"}|} with
  | Serve.Protocol.Edit { name; _ } ->
      check_string "default session name" "default" name
  | _ -> Alcotest.fail "expected Edit");
  (match ok {|{"op":"close"}|} with
  | Serve.Protocol.Close _ -> ()
  | _ -> Alcotest.fail "expected Close");
  let _, e = err {|{"op":"edit","id":1}|} in
  check_string "edit needs code" "bad-request" e.Serve.Protocol.kind;
  let _, e = err {|{"op":"open","id":1,"code":"var x;"}|} in
  check_string "open needs lang" "bad-request" e.Serve.Protocol.kind

let test_reply_render () =
  let line =
    Serve.Protocol.render_predictions ~id:(Serve.Json.Num 3.)
      ~lang:"JavaScript" [ ("a", "count"); ("b", "msg") ]
  in
  check_string "predictions shape"
    {|{"id":3,"ok":true,"lang":"JavaScript","count":2,"predictions":[{"var":"a","name":"count"},{"var":"b","name":"msg"}]}|}
    line;
  check_bool "reply_ok" true (Serve.Protocol.reply_ok line);
  let e =
    Serve.Protocol.render_error ~id:Serve.Json.Null
      { Serve.Protocol.kind = "size-limit"; msg = "too big"; pos = None }
  in
  check_string "error shape"
    {|{"id":null,"ok":false,"error":{"kind":"size-limit","msg":"too big"}}|} e;
  check_bool "reply_ok false" false (Serve.Protocol.reply_ok e);
  (match Serve.Protocol.reply_error e with
  | Some { Serve.Protocol.kind = "size-limit"; _ } -> ()
  | _ -> Alcotest.fail "reply_error roundtrip")

(* ---------- shared tiny model ---------- *)

let corpus ~n ~seed =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
  Corpus.Gen.generate_sources config Corpus.Render.Js

let lang = Pigeon.Lang.javascript

let model =
  lazy
    (let sources = corpus ~n:40 ~seed:77 in
     let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
     let graphs =
       Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
         sources
     in
     let config = { Crf.Train.default_config with Crf.Train.iterations = 3 } in
     Crf.Train.train ~config graphs)

let engine ?limits () =
  Serve.Engine.create ?limits ~model:(Lazy.force model) ()

let sample_code =
  "function f(a, b) { var total = a + b; var msg = 'x' + total; return msg; }\n"

let predict_line ?(id = 1) code =
  Serve.Json.to_string
    (Serve.Json.Obj
       [ ("op", Serve.Json.Str "predict");
         ("id", Serve.Json.Num (float_of_int id));
         ("lang", Serve.Json.Str "JavaScript");
         ("code", Serve.Json.Str code) ])

let parse_req line =
  match Serve.Protocol.request_of_line line with
  | Ok r -> r
  | Error (_, e) -> Alcotest.failf "request rejected: %s" e.Serve.Protocol.msg

let deep_code =
  "function f(){ return " ^ String.make 5_000 '(' ^ "1"
  ^ String.make 5_000 ')' ^ "; }\n"

(* ---------- engine isolation ---------- *)

let error_kind_of reply =
  match Serve.Protocol.reply_error reply with
  | Some e -> e.Serve.Protocol.kind
  | None -> Alcotest.failf "expected an error reply, got %s" reply

let test_engine_predict_ok () =
  let e = engine () in
  match Serve.Engine.predict_one e ~lang ~code:sample_code with
  | Ok pairs ->
      check_bool "has pairs" true (pairs <> []);
      check_bool "vars seen" true (List.mem_assoc "total" pairs)
  | Error err -> Alcotest.failf "predict failed: %s" err.Serve.Protocol.msg

let test_engine_hostile () =
  let e = engine () in
  (* pathological nesting: structured depth-limit error, no exception *)
  let reply = Serve.Engine.handle e (parse_req (predict_line deep_code)) in
  check_string "depth" "depth-limit" (error_kind_of reply);
  (* oversized input against a small per-request budget *)
  let tiny =
    { (Serve.Engine.limits e) with Lexkit.max_input_bytes = 64 }
  in
  let e_small = engine ~limits:tiny () in
  let big = predict_line (String.make 1_000 ' ' ^ sample_code) in
  let reply = Serve.Engine.handle e_small (parse_req big) in
  check_string "oversized" "size-limit" (error_kind_of reply);
  (* step-budget exhaustion: valid code, absurdly small budget *)
  let starved =
    { (Serve.Engine.limits e) with Lexkit.max_parse_steps = 5 }
  in
  let e_starved = engine ~limits:starved () in
  let reply = Serve.Engine.handle e_starved (parse_req (predict_line sample_code)) in
  check_string "steps" "size-limit" (error_kind_of reply);
  (* unknown language *)
  let reply =
    Serve.Engine.handle e
      (parse_req {|{"op":"predict","id":1,"lang":"COBOL","code":"x"}|})
  in
  check_string "unknown lang" "bad-request" (error_kind_of reply);
  (* syntactically broken input *)
  let reply =
    Serve.Engine.handle e (parse_req (predict_line "function {{{ ???"))
  in
  check_string "parse error" "parse-error" (error_kind_of reply)

let test_engine_batch_isolation () =
  let e = engine () in
  let good1 = parse_req (predict_line ~id:1 sample_code) in
  let hostile = parse_req (predict_line ~id:2 deep_code) in
  let good2 = parse_req (predict_line ~id:3 "var q = 1; var r = q + 2;\n") in
  let batch = Serve.Engine.handle_batch e [ good1; hostile; good2 ] in
  check_int "three replies" 3 (List.length batch);
  let r1, r2, r3 =
    match batch with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  check_bool "good1 ok" true (Serve.Protocol.reply_ok r1);
  check_string "hostile isolated" "depth-limit" (error_kind_of r2);
  check_bool "good2 ok" true (Serve.Protocol.reply_ok r3);
  (* byte-identity: batched replies equal the one-shot replies *)
  check_string "batch = one-shot (1)" (Serve.Engine.handle e good1) r1;
  check_string "batch = one-shot (3)" (Serve.Engine.handle e good2) r3

let test_engine_batch_pool () =
  (* same bytes whether prediction fans out over a pool or not *)
  let e = engine () in
  let reqs =
    List.init 6 (fun i ->
        parse_req
          (predict_line ~id:i
             (Printf.sprintf "var v%d = %d; var w = v%d + 1;\n" i i i)))
  in
  let seq = Serve.Engine.handle_batch e reqs in
  let pool = Parallel.create ~jobs:2 () in
  let par = Serve.Engine.handle_batch ~pool e reqs in
  Parallel.shutdown pool;
  List.iter2 (check_string "pooled batch byte-identical") seq par

(* ---------- daemon over a unix socket ---------- *)

let temp_sock () =
  let path =
    Filename.temp_file "pigeon-serve-test" ".sock"
  in
  Sys.remove path;
  path

let with_daemon ?pool ?(max_batch = 8) ?(max_line = 1024 * 1024) ?(max_queue = 0)
    ?(max_conns = 0) ?idle_timeout ?(faults = Serve.Faults.disabled) e f =
  let path = temp_sock () in
  let cfg =
    {
      Serve.Server.default_config with
      Serve.Server.unix_socket = Some path;
      max_batch;
      max_line;
      max_queue;
      max_conns;
      idle_timeout =
        (match idle_timeout with
        | Some s -> s
        | None -> Serve.Server.default_config.Serve.Server.idle_timeout);
      faults;
    }
  in
  let t = Serve.Server.start ?pool e cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_stop t;
      Serve.Server.wait t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path t)

let test_daemon_byte_identity () =
  (* jobs=1 daemon (no pool): replies byte-identical to Engine.handle *)
  let e = engine () in
  with_daemon e (fun path _t ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let lines =
        [ predict_line ~id:10 sample_code;
          predict_line ~id:11 "var alpha = 3; var beta = alpha * 2;\n";
          predict_line ~id:12 deep_code ]
      in
      List.iter
        (fun line ->
          let daemon_reply =
            match Serve.Client.request c line with
            | Some r -> r
            | None -> Alcotest.fail "daemon closed connection"
          in
          let direct = Serve.Engine.handle e (parse_req line) in
          check_string "daemon = direct" direct daemon_reply)
        lines)

let test_daemon_concurrent_isolation () =
  (* 4 concurrent clients, each mixing hostile and well-formed
     requests: every request answered, hostile ones structurally, and
     the daemon survives to serve a final request. *)
  let e = engine () in
  let pool = Parallel.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) @@ fun () ->
  with_daemon ~pool e (fun path _t ->
      let n_clients = 4 and per_client = 6 in
      let failures = Queue.create () in
      let fmutex = Mutex.create () in
      let fail msg =
        Mutex.lock fmutex;
        Queue.add msg failures;
        Mutex.unlock fmutex
      in
      let client k =
        let c = Serve.Client.connect_unix path in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        for i = 0 to per_client - 1 do
          let id = (k * 100) + i in
          let hostile = (i + k) mod 3 = 0 in
          let line =
            if hostile then predict_line ~id deep_code
            else
              predict_line ~id
                (Printf.sprintf "var a%d = %d; var b = a%d + 1;\n" i i i)
          in
          match Serve.Client.request c line with
          | None -> fail (Printf.sprintf "client %d: connection dropped" k)
          | Some reply ->
              let ok = Serve.Protocol.reply_ok reply in
              if hostile && ok then
                fail (Printf.sprintf "client %d: hostile request %d ok" k i);
              if (not hostile) && not ok then
                fail
                  (Printf.sprintf "client %d req %d: unexpected error %s" k i
                     reply);
              (* replies are correlated: ours, not another client's *)
              (match
                 Serve.Protocol.reply_error reply, Serve.Json.parse reply
               with
              | _, Ok v ->
                  if Serve.Json.int_field "id" v <> Some id then
                    fail (Printf.sprintf "client %d: wrong id in reply" k)
              | _, Error _ -> fail "unparseable reply")
        done
      in
      let threads = List.init n_clients (fun k -> Thread.create client k) in
      List.iter Thread.join threads;
      check_int "no failures"
        0
        (Queue.length failures);
      (* the daemon is still alive after the burst *)
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      match Serve.Client.request c {|{"op":"ping","id":99}|} with
      | Some r -> check_bool "still serving" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "daemon died during the burst")

let test_daemon_garbage_and_disconnect () =
  let e = engine () in
  with_daemon e (fun path _t ->
      (* garbage line: structured bad-request, connection stays usable *)
      let c = Serve.Client.connect_unix path in
      (match Serve.Client.request c "this is not json" with
      | Some r -> check_string "garbage" "bad-request" (error_kind_of r)
      | None -> Alcotest.fail "no reply to garbage");
      (match Serve.Client.request c {|{"op":"ping","id":1}|} with
      | Some r -> check_bool "conn survives" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "connection dropped after garbage");
      Serve.Client.close c;
      (* disconnect mid-line: daemon ignores the partial request *)
      let c2 = Serve.Client.connect_unix path in
      Serve.Client.send_line c2 {|{"op":"predict","id":2,"la|};
      Serve.Client.close c2;
      (* oversized request line: error reply, then the server closes *)
      let e2 = engine () in
      ignore e2;
      let c3 = Serve.Client.connect_unix path in
      (match Serve.Client.request c3 {|{"op":"ping","id":3}|} with
      | Some r -> check_bool "alive after disconnect" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "daemon died after mid-line disconnect");
      Serve.Client.close c3)

let test_daemon_oversized_line () =
  let e = engine () in
  with_daemon ~max_line:4096 e (fun path _t ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let huge = predict_line (String.make 100_000 'x') in
      (match Serve.Client.request c huge with
      | Some r -> check_string "framing guard" "bad-request" (error_kind_of r)
      | None -> Alcotest.fail "no overflow reply");
      (* a fresh connection still works *)
      let c2 = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c2) @@ fun () ->
      match Serve.Client.request c2 {|{"op":"ping","id":1}|} with
      | Some r -> check_bool "daemon alive" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "daemon died on oversized line")

let test_daemon_shutdown_request () =
  let e = engine () in
  let path = temp_sock () in
  let cfg =
    { Serve.Server.default_config with Serve.Server.unix_socket = Some path }
  in
  let t = Serve.Server.start e cfg in
  let c = Serve.Client.connect_unix path in
  (match Serve.Client.request c {|{"op":"shutdown","id":5}|} with
  | Some r ->
      check_string "stopping reply" {|{"id":5,"ok":true,"stopping":true}|} r
  | None -> Alcotest.fail "no shutdown reply");
  Serve.Client.close c;
  Serve.Server.wait t;
  check_bool "stopped" true (Serve.Server.stopped t);
  check_bool "socket unlinked" false (Sys.file_exists path)

let test_daemon_stats () =
  let e = engine () in
  with_daemon e (fun path t ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (Serve.Client.request c (predict_line sample_code));
      ignore (Serve.Client.request c "garbage");
      (match Serve.Client.request c {|{"op":"stats","id":1}|} with
      | Some r -> check_bool "stats ok" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "no stats reply");
      let s = Serve.Server.stats t in
      check_bool "served counted" true (s.Serve.Protocol.served >= 2);
      check_bool "errors counted" true (s.Serve.Protocol.errors >= 1);
      (* the overload/lifecycle counters exist and are sane at rest *)
      check_int "nothing shed" 0 s.Serve.Protocol.shed;
      check_int "no reloads yet" 0 s.Serve.Protocol.reloads;
      check_int "queue empty at rest" 0 s.Serve.Protocol.queue_depth;
      check_bool "one connection open" true (s.Serve.Protocol.conns >= 1);
      check_int "sequential jobs" 1 s.Serve.Protocol.jobs)

(* ---------- fault injection knobs ---------- *)

let test_faults_unit () =
  (match Serve.Faults.of_string "delay_ms=3,engine_every=7" with
  | Ok f ->
      check_int "delay" 3 f.Serve.Faults.pre_batch_delay_ms;
      check_int "engine" 7 f.Serve.Faults.engine_error_every;
      check_int "torn stays off" 0 f.Serve.Faults.torn_reply_every;
      check_bool "enabled" true (Serve.Faults.enabled f)
  | Error e -> Alcotest.fail e);
  (match Serve.Faults.of_string "" with
  | Ok f -> check_bool "empty = disabled" false (Serve.Faults.enabled f)
  | Error e -> Alcotest.fail e);
  (* fail fast on typos: a silently self-disabling chaos knob would
     fake a passing run *)
  (match Serve.Faults.of_string "dleay_ms=3" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (match Serve.Faults.of_string "delay_ms=soon" with
  | Ok _ -> Alcotest.fail "non-integer accepted"
  | Error _ -> ());
  (* deterministic cadence: every Nth event fires, starting at the Nth *)
  let st =
    Serve.Faults.state
      { Serve.Faults.disabled with Serve.Faults.engine_error_every = 3 }
  in
  let fired =
    List.init 9 (fun _ -> Serve.Faults.fire st Serve.Faults.Engine_error)
  in
  Alcotest.(check (list bool))
    "every 3rd"
    [ false; false; true; false; false; true; false; false; true ]
    fired;
  check_bool "other kinds independent" false
    (Serve.Faults.fire st Serve.Faults.Torn_reply)

(* ---------- overload and lifecycle ---------- *)

let test_daemon_overload_shed () =
  (* max_queue=1 and a deliberately slow batcher: a pipelined burst
     must answer every request — some ok, at least one shed with a
     structured "overloaded" error — and never wedge or drop. *)
  let e = engine () in
  let faults =
    { Serve.Faults.disabled with Serve.Faults.pre_batch_delay_ms = 20 }
  in
  with_daemon ~max_batch:1 ~max_queue:1 ~faults e (fun path t ->
      let c = Serve.Client.connect_unix ~read_timeout:30. path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let n = 12 in
      for i = 1 to n do
        Serve.Client.send_line c (predict_line ~id:i sample_code)
      done;
      let oks = ref 0 and sheds = ref 0 in
      for _ = 1 to n do
        match Serve.Client.recv_line c with
        | Some r when Serve.Protocol.reply_ok r -> incr oks
        | Some r when error_kind_of r = "overloaded" -> incr sheds
        | Some r -> Alcotest.failf "unexpected reply %s" r
        | None -> Alcotest.fail "connection dropped mid-burst"
      done;
      check_int "every request answered" n (!oks + !sheds);
      check_bool "some served" true (!oks > 0);
      check_bool "some shed" true (!sheds > 0);
      let s = Serve.Server.stats t in
      check_bool "sheds counted" true (s.Serve.Protocol.shed >= !sheds);
      check_bool "high-water bounded" true (s.Serve.Protocol.queue_hw <= 1))

let test_daemon_idle_timeout () =
  (* A connection that goes silent past its idle budget gets a
     best-effort "timeout" error line, then EOF — and the daemon keeps
     serving everyone else. *)
  let e = engine () in
  with_daemon ~idle_timeout:0.2 e (fun path _t ->
      let c = Serve.Client.connect_unix ~read_timeout:10. path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.recv_line c with
      | Some line ->
          check_string "timeout line" "timeout" (error_kind_of line)
      | None -> Alcotest.fail "closed without the timeout line");
      (match Serve.Client.recv_line c with
      | None -> ()
      | Some l -> Alcotest.failf "expected EOF after timeout, got %s" l);
      (* a lively client is unaffected *)
      let c2 = Serve.Client.connect_unix ~read_timeout:10. path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c2) @@ fun () ->
      match Serve.Client.request c2 {|{"op":"ping","id":1}|} with
      | Some r -> check_bool "still serving" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "daemon died with the idle connection")

let test_daemon_max_conns () =
  (* Connection cap: the excess connection gets one "overloaded" line
     and a close; the resident connection is untouched. *)
  let e = engine () in
  with_daemon ~max_conns:1 e (fun path t ->
      let c1 = Serve.Client.connect_unix ~read_timeout:10. path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c1) @@ fun () ->
      (match Serve.Client.request c1 {|{"op":"ping","id":1}|} with
      | Some r -> check_bool "first conn ok" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "first connection dropped");
      let c2 = Serve.Client.connect_unix ~read_timeout:10. path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c2) @@ fun () ->
      (match Serve.Client.recv_line c2 with
      | Some line -> check_string "capped" "overloaded" (error_kind_of line)
      | None -> Alcotest.fail "no rejection line");
      (match Serve.Client.recv_line c2 with
      | None -> ()
      | Some l -> Alcotest.failf "expected EOF after rejection, got %s" l);
      (match Serve.Client.request c1 {|{"op":"ping","id":2}|} with
      | Some r -> check_bool "resident conn fine" true (Serve.Protocol.reply_ok r)
      | None -> Alcotest.fail "resident connection dropped");
      let s = Serve.Server.stats t in
      check_bool "rejection counted as shed" true (s.Serve.Protocol.shed >= 1))

(* ---------- hot model reload ---------- *)

let model_b =
  lazy
    (let sources = corpus ~n:36 ~seed:99 in
     let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
     let graphs =
       Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
         sources
     in
     let config = { Crf.Train.default_config with Crf.Train.iterations = 3 } in
     Crf.Train.train ~config graphs)

let save_model m =
  let path = Filename.temp_file "pigeon-serve-model" ".crf" in
  Crf.Serialize.save m path;
  path

let test_engine_reload_errors () =
  (* no path known, bad path, and the old model surviving both *)
  let e = engine () in
  (match Serve.Engine.reload e () with
  | Error err -> check_string "pathless" "bad-request" err.Serve.Protocol.kind
  | Ok _ -> Alcotest.fail "reload without any path must fail");
  check_bool "not reloadable" false (Serve.Engine.reloadable e);
  (match Serve.Engine.reload e ~model_path:"/nonexistent/model.crf" () with
  | Error err -> check_string "missing file" "io-error" err.Serve.Protocol.kind
  | Ok _ -> Alcotest.fail "reload from a missing file must fail");
  (* a failed reload leaves the engine serving *)
  match Serve.Engine.predict_one e ~lang ~code:sample_code with
  | Ok pairs -> check_bool "still predicting" true (pairs <> [])
  | Error err -> Alcotest.failf "engine broken after failed reload: %s" err.Serve.Protocol.msg

let test_daemon_reload () =
  let path_a = save_model (Lazy.force model) in
  let path_b = save_model (Lazy.force model_b) in
  let e =
    Serve.Engine.create ~model_path:path_a
      ~model:(Crf.Serialize.load_exn path_a) ()
  in
  (* reference engines, loaded fresh from the same files *)
  let ref_b =
    Serve.Engine.create ~model_path:path_b
      ~model:(Crf.Serialize.load_exn path_b) ()
  in
  check_bool "reloadable" true (Serve.Engine.reloadable e);
  with_daemon e (fun sock t ->
      let c = Serve.Client.connect_unix ~read_timeout:30. sock in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let probe = predict_line ~id:21 sample_code in
      (* swap to model B over the wire *)
      let reload_req =
        Serve.Json.to_string
          (Serve.Json.Obj
             [ ("op", Serve.Json.Str "reload");
               ("id", Serve.Json.Num 22.);
               ("model", Serve.Json.Str path_b) ])
      in
      (match Serve.Client.request c reload_req with
      | Some r ->
          check_string "reloaded reply"
            {|{"id":22,"ok":true,"reloaded":true}|} r
      | None -> Alcotest.fail "no reload reply");
      (match Serve.Client.request c probe with
      | Some r ->
          check_string "serves model B, byte-identical to a fresh load"
            (Serve.Engine.handle ref_b (parse_req probe))
            r
      | None -> Alcotest.fail "no post-reload reply");
      (* a bad reload answers structurally and keeps the old model *)
      let bad_req =
        {|{"op":"reload","id":23,"model":"/nonexistent/model.crf"}|}
      in
      (match Serve.Client.request c bad_req with
      | Some r -> check_string "bad reload" "io-error" (error_kind_of r)
      | None -> Alcotest.fail "no bad-reload reply");
      (match Serve.Client.request c probe with
      | Some r ->
          check_string "old (= B) model keeps serving"
            (Serve.Engine.handle ref_b (parse_req probe))
            r
      | None -> Alcotest.fail "no post-bad-reload reply");
      (* path-less reload (the SIGHUP semantics): re-reads the last
         successfully loaded paths *)
      (match Serve.Client.request c {|{"op":"reload","id":24}|} with
      | Some r ->
          check_string "pathless reload ok"
            {|{"id":24,"ok":true,"reloaded":true}|} r
      | None -> Alcotest.fail "no pathless-reload reply");
      let s = Serve.Server.stats t in
      check_int "successful reloads counted" 2 s.Serve.Protocol.reloads);
  Sys.remove path_a;
  Sys.remove path_b

(* ---------- multi-model registry ---------- *)

let predict_line_for ?(id = 1) ~model code =
  Serve.Json.to_string
    (Serve.Json.Obj
       [ ("op", Serve.Json.Str "predict");
         ("id", Serve.Json.Num (float_of_int id));
         ("lang", Serve.Json.Str "JavaScript");
         ("code", Serve.Json.Str code);
         ("model", Serve.Json.Str model) ])

let find_stat name stats =
  match
    List.find_opt (fun m -> m.Serve.Protocol.ms_name = name) stats
  with
  | Some m -> m
  | None ->
      Alcotest.failf "no registry entry %S (have: %s)" name
        (String.concat ", "
           (List.map (fun m -> m.Serve.Protocol.ms_name) stats))

let test_engine_registry_routing () =
  let path_b = save_model (Lazy.force model_b) in
  let e = engine () in
  (match Serve.Engine.reload e ~name:"b" ~model_path:path_b () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "load b: %s" err.Serve.Protocol.msg);
  (* ["model":"b"] routes to B, byte-identical to a fresh engine built
     on the same file; no model field still serves the default *)
  let ref_b =
    Serve.Engine.create ~model:(Crf.Serialize.load_exn path_b) ()
  in
  let named = predict_line_for ~id:41 ~model:"b" sample_code in
  let plain = predict_line ~id:41 sample_code in
  check_string "named routes to B"
    (Serve.Engine.handle ref_b (parse_req plain))
    (Serve.Engine.handle e (parse_req named));
  check_string "plain still serves the default"
    (Serve.Engine.handle (engine ()) (parse_req plain))
    (Serve.Engine.handle e (parse_req plain));
  (* unknown model: structured bad-request naming the loaded entries *)
  let reply =
    Serve.Engine.handle e (parse_req (predict_line_for ~model:"nope" sample_code))
  in
  check_string "unknown model" "bad-request" (error_kind_of reply);
  (* a mixed batch keeps per-request routing and request order *)
  let reqs =
    [ parse_req (predict_line ~id:1 sample_code);
      parse_req (predict_line_for ~id:2 ~model:"b" sample_code);
      parse_req (predict_line_for ~id:3 ~model:"nope" sample_code) ]
  in
  (match Serve.Engine.handle_batch e reqs with
  | [ r1; r2; r3 ] ->
      check_string "batch default = one-shot"
        (Serve.Engine.handle e (List.nth reqs 0)) r1;
      check_string "batch named = one-shot"
        (Serve.Engine.handle e (List.nth reqs 1)) r2;
      check_string "batch unknown isolated" "bad-request" (error_kind_of r3)
  | rs -> Alcotest.failf "expected 3 replies, got %d" (List.length rs));
  Sys.remove path_b

let test_engine_unload_set_default () =
  let path_b = save_model (Lazy.force model_b) in
  let e = engine () in
  (match Serve.Engine.unload e "default" with
  | Error err ->
      check_string "cannot unload the default" "bad-request"
        err.Serve.Protocol.kind
  | Ok () -> Alcotest.fail "unloading the default must fail");
  (match Serve.Engine.set_default e "ghost" with
  | Error err -> check_string "unknown default" "bad-request" err.Serve.Protocol.kind
  | Ok () -> Alcotest.fail "set_default on an unknown entry must fail");
  (match Serve.Engine.reload e ~name:"b" ~model_path:path_b () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "load b: %s" err.Serve.Protocol.msg);
  (match Serve.Engine.set_default e "b" with
  | Ok () -> ()
  | Error err -> Alcotest.failf "set_default b: %s" err.Serve.Protocol.msg);
  (* plain requests now serve B *)
  let ref_b =
    Serve.Engine.create ~model:(Crf.Serialize.load_exn path_b) ()
  in
  let plain = predict_line ~id:51 sample_code in
  check_string "default switched to B"
    (Serve.Engine.handle ref_b (parse_req plain))
    (Serve.Engine.handle e (parse_req plain));
  (* the old default is now unloadable, and its name then 404s *)
  (match Serve.Engine.unload e "default" with
  | Ok () -> ()
  | Error err -> Alcotest.failf "unload default: %s" err.Serve.Protocol.msg);
  let reply =
    Serve.Engine.handle e
      (parse_req (predict_line_for ~model:"default" sample_code))
  in
  check_string "unloaded entry is gone" "bad-request" (error_kind_of reply);
  check_int "one entry left" 1 (List.length (Serve.Engine.models e));
  Sys.remove path_b

let test_engine_models_stats () =
  let path_b = save_model (Lazy.force model_b) in
  let e = engine () in
  (match Serve.Engine.reload e ~name:"b" ~model_path:path_b () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "load b: %s" err.Serve.Protocol.msg);
  let stats = Serve.Engine.models e in
  check_int "two entries" 2 (List.length stats);
  let d = find_stat "default" stats in
  check_bool "default flagged" true d.Serve.Protocol.ms_default;
  check_string "in-memory default is heap" "heap" d.Serve.Protocol.ms_storage;
  check_int "heap maps nothing" 0 d.Serve.Protocol.ms_mapped_bytes;
  let b = find_stat "b" stats in
  check_bool "b not default" false b.Serve.Protocol.ms_default;
  check_bool "b loaded" true b.Serve.Protocol.ms_loaded;
  check_string "b mapped" "mapped" b.Serve.Protocol.ms_storage;
  check_int "b maps the whole file" (Unix.stat path_b).Unix.st_size
    b.Serve.Protocol.ms_mapped_bytes;
  check_bool "b path recorded" true
    (b.Serve.Protocol.ms_model_path = Some path_b);
  check_int "never used yet" (-1) b.Serve.Protocol.ms_last_used_ms;
  ignore
    (Serve.Engine.handle e (parse_req (predict_line_for ~model:"b" sample_code)));
  let b = find_stat "b" (Serve.Engine.models e) in
  check_bool "last-used set after a request" true
    (b.Serve.Protocol.ms_last_used_ms >= 0);
  Sys.remove path_b

let test_engine_eviction_and_revival () =
  let path_b = save_model (Lazy.force model_b) in
  (* budget of one byte: at most the just-loaded entry stays mapped *)
  let e =
    Serve.Engine.create ~max_mapped_bytes:1 ~model:(Lazy.force model) ()
  in
  (match Serve.Engine.reload e ~name:"b" ~model_path:path_b () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "load b: %s" err.Serve.Protocol.msg);
  (match Serve.Engine.reload e ~name:"c" ~model_path:path_b () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "load c: %s" err.Serve.Protocol.msg);
  (* loading c evicted b (the only non-default mapped candidate) *)
  let b = find_stat "b" (Serve.Engine.models e) in
  check_bool "b evicted" false b.Serve.Protocol.ms_loaded;
  check_string "b storage" "unloaded" b.Serve.Protocol.ms_storage;
  check_int "b eviction counted" 1 b.Serve.Protocol.ms_evictions;
  check_bool "b keeps its path" true
    (b.Serve.Protocol.ms_model_path = Some path_b);
  (* naming the evicted entry revives it transparently, with the same
     bytes a fresh load would serve; c is evicted in turn *)
  let ref_b =
    Serve.Engine.create ~model:(Crf.Serialize.load_exn path_b) ()
  in
  let named = predict_line_for ~id:61 ~model:"b" sample_code in
  let plain = predict_line ~id:61 sample_code in
  check_string "revived b serves the same bytes"
    (Serve.Engine.handle ref_b (parse_req plain))
    (Serve.Engine.handle e (parse_req named));
  let stats = Serve.Engine.models e in
  check_bool "b live again" true (find_stat "b" stats).Serve.Protocol.ms_loaded;
  check_bool "c evicted in turn" false
    (find_stat "c" stats).Serve.Protocol.ms_loaded;
  (* the default (heap, zero mapped bytes) is never an eviction victim *)
  check_bool "default untouched" true
    (find_stat "default" stats).Serve.Protocol.ms_loaded;
  check_int "default never evicted" 0
    (find_stat "default" stats).Serve.Protocol.ms_evictions;
  Sys.remove path_b

let test_daemon_registry () =
  let path_a = save_model (Lazy.force model) in
  let path_b = save_model (Lazy.force model_b) in
  let e =
    Serve.Engine.create ~model_path:path_a
      ~model:(Crf.Serialize.load_exn path_a) ()
  in
  let ref_b =
    Serve.Engine.create ~model_path:path_b
      ~model:(Crf.Serialize.load_exn path_b) ()
  in
  with_daemon e (fun sock t ->
      let c = Serve.Client.connect_unix ~read_timeout:30. sock in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let req line =
        match Serve.Client.request c line with
        | Some r -> r
        | None -> Alcotest.failf "daemon closed on %s" line
      in
      (* load B under a name over the wire *)
      let load_b =
        Serve.Json.to_string
          (Serve.Json.Obj
             [ ("op", Serve.Json.Str "reload");
               ("id", Serve.Json.Num 70.);
               ("name", Serve.Json.Str "b");
               ("model", Serve.Json.Str path_b) ])
      in
      check_string "named load reply" {|{"id":70,"ok":true,"reloaded":true}|}
        (req load_b);
      (* route by name; the default is untouched *)
      check_string "predict by name"
        (Serve.Engine.handle ref_b (parse_req (predict_line ~id:71 sample_code)))
        (req (predict_line_for ~id:71 ~model:"b" sample_code));
      check_string "unknown name over the wire" "bad-request"
        (error_kind_of (req (predict_line_for ~id:72 ~model:"zzz" sample_code)));
      (* set_default / unload wire forms *)
      check_string "set_default reply" {|{"id":73,"ok":true,"default":"b"}|}
        (req {|{"op":"reload","id":73,"set_default":"b"}|});
      check_string "plain predict now serves B"
        (Serve.Engine.handle ref_b (parse_req (predict_line ~id:74 sample_code)))
        (req (predict_line ~id:74 sample_code));
      check_string "unload reply" {|{"id":75,"ok":true,"unloaded":"default"}|}
        (req {|{"op":"reload","id":75,"unload":"default"}|});
      check_string "unloading the default refused" "bad-request"
        (error_kind_of (req {|{"op":"reload","id":76,"unload":"b"}|}));
      check_string "exclusive forms refused" "bad-request"
        (error_kind_of
           (req {|{"op":"reload","id":77,"unload":"b","set_default":"b"}|}));
      (* per-model stats over the wire *)
      let stats_reply = req {|{"op":"stats","id":78}|} in
      let contains needle =
        let n = String.length needle and h = String.length stats_reply in
        let rec go i =
          i + n <= h && (String.sub stats_reply i n = needle || go (i + 1))
        in
        go 0
      in
      check_bool "stats lists models" true (contains {|"models":[|});
      check_bool "stats names b as default" true
        (contains {|"name":"b","default":true|});
      check_bool "stats reports storage" true (contains {|"storage":|});
      let s = Serve.Server.stats t in
      check_int "only the load bumped the reload counter" 1
        s.Serve.Protocol.reloads;
      check_int "one entry left" 1 (List.length s.Serve.Protocol.models));
  Sys.remove path_a;
  Sys.remove path_b

(* ---------- edit sessions ---------- *)

let session_line op ?(session = "default") ~id fields =
  Serve.Json.to_string
    (Serve.Json.Obj
       ([ ("op", Serve.Json.Str op);
          ("id", Serve.Json.Num (float_of_int id));
          ("session", Serve.Json.Str session) ]
       @ fields))

let open_line ?session ~id code =
  session_line "open" ?session ~id
    [ ("lang", Serve.Json.Str "JavaScript"); ("code", Serve.Json.Str code) ]

let edit_line ?session ~id code =
  session_line "edit" ?session ~id [ ("code", Serve.Json.Str code) ]

let close_line ?session ~id () = session_line "close" ?session ~id []

let one ?(conn = 1) e line =
  match Serve.Engine.handle_batch_conn e [ (conn, parse_req line) ] with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)

(* A session reply is the one-shot predict reply with a trailing
   "session" field — the byte-prefix contract the live smoke relies
   on. *)
let with_session_suffix ?(session = "default") oneshot =
  String.sub oneshot 0 (String.length oneshot - 1)
  ^ {|,"session":"|} ^ session ^ {|"}|}

let reply_ok = Serve.Protocol.reply_ok

let test_session_byte_identity () =
  let e = engine () in
  let code2 = "function g(a) { var sum = a + 1; return sum; }\n" in
  let r_open = one e (open_line ~id:1 sample_code) in
  let oneshot = Serve.Engine.handle e (parse_req (predict_line ~id:1 sample_code)) in
  check_string "open = one-shot + session" (with_session_suffix oneshot) r_open;
  let r_edit = one e (edit_line ~id:2 code2) in
  let oneshot2 = Serve.Engine.handle e (parse_req (predict_line ~id:2 code2)) in
  check_string "edit = one-shot + session" (with_session_suffix oneshot2) r_edit;
  check_string "close reports edit count"
    {|{"id":3,"ok":true,"closed":"default","edits":1}|}
    (one e (close_line ~id:3 ()))

let test_session_edit_stream () =
  let e = engine () in
  let config =
    { Corpus.Gen.default with Corpus.Gen.min_funcs = 3; max_funcs = 3; seed = 11 }
  in
  match Corpus.Gen.edit_trace ~steps:6 config Corpus.Render.Js with
  | [] -> assert false
  | first :: edits ->
      let expect id src =
        with_session_suffix
          (Serve.Engine.handle e (parse_req (predict_line ~id src)))
      in
      check_string "step 0" (expect 0 first) (one e (open_line ~id:0 first));
      List.iteri
        (fun i src ->
          let id = i + 1 in
          check_string
            (Printf.sprintf "step %d" id)
            (expect id src)
            (one e (edit_line ~id src)))
        edits

let test_session_no_session () =
  let e = engine () in
  check_string "edit unopened" "no-session"
    (error_kind_of (one e (edit_line ~id:1 sample_code)));
  check_string "close unopened" "no-session"
    (error_kind_of (one e (close_line ~id:2 ())));
  check_bool "open ok" true (reply_ok (one e (open_line ~id:3 sample_code)));
  check_bool "close ok" true (reply_ok (one e (close_line ~id:4 ())));
  check_string "edit after close" "no-session"
    (error_kind_of (one e (edit_line ~id:5 sample_code)))

let test_session_conn_isolation () =
  let e = engine () in
  check_bool "conn 1 open" true
    (reply_ok (one ~conn:1 e (open_line ~id:1 sample_code)));
  (* the same session name on another connection is a different session *)
  check_string "conn 2 blind" "no-session"
    (error_kind_of (one ~conn:2 e (edit_line ~id:2 sample_code)));
  check_bool "conn 2 open" true
    (reply_ok (one ~conn:2 e (open_line ~id:3 sample_code)));
  Serve.Engine.drop_conn e ~conn:1;
  check_string "conn 1 dropped" "no-session"
    (error_kind_of (one ~conn:1 e (edit_line ~id:4 sample_code)));
  check_bool "conn 2 survives" true
    (reply_ok (one ~conn:2 e (edit_line ~id:5 sample_code)))

let test_session_hostile_edit () =
  let e = engine () in
  check_bool "open" true (reply_ok (one e (open_line ~id:1 sample_code)));
  (* a hostile edit costs its own request an error, not the session *)
  check_string "deep edit" "depth-limit"
    (error_kind_of (one e (edit_line ~id:2 deep_code)));
  check_string "garbage edit" "parse-error"
    (error_kind_of (one e (edit_line ~id:3 "function {{{ ???")));
  check_bool "session survives" true
    (reply_ok (one e (edit_line ~id:4 sample_code)));
  check_string "only good edits counted"
    {|{"id":5,"ok":true,"closed":"default","edits":1}|}
    (one e (close_line ~id:5 ()))

let test_session_eviction () =
  let e =
    Serve.Engine.create ~model:(Lazy.force model) ~max_session_bytes:1 ()
  in
  check_bool "open a" true
    (reply_ok (one e (open_line ~session:"a" ~id:1 sample_code)));
  (* opening b pushes the total over the 1-byte budget: a, least
     recently used, is evicted — never b, which just extracted *)
  check_bool "open b" true
    (reply_ok (one e (open_line ~session:"b" ~id:2 sample_code)));
  check_string "a evicted" "no-session"
    (error_kind_of (one e (edit_line ~session:"a" ~id:3 sample_code)));
  check_bool "b lives" true
    (reply_ok (one e (edit_line ~session:"b" ~id:4 sample_code)));
  (* re-opening revives the evicted name *)
  check_bool "a re-opens" true
    (reply_ok (one e (open_line ~session:"a" ~id:5 sample_code)));
  let sessions, agg = Serve.Engine.session_stats e in
  check_bool "live sessions" true (List.length sessions >= 1);
  check_bool "whole-session evictions counted" true
    (agg.Serve.Protocol.cache_evictions >= 1)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects" `Quick test_json_rejects;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request parse" `Quick test_request_parse;
          Alcotest.test_case "reply render" `Quick test_reply_render;
        ] );
      ( "faults",
        [ Alcotest.test_case "parse and cadence" `Quick test_faults_unit ] );
      ( "engine",
        [
          Alcotest.test_case "predict ok" `Quick test_engine_predict_ok;
          Alcotest.test_case "hostile isolation" `Quick test_engine_hostile;
          Alcotest.test_case "batch isolation" `Quick test_engine_batch_isolation;
          Alcotest.test_case "pool byte-identity" `Quick test_engine_batch_pool;
          Alcotest.test_case "reload errors" `Quick test_engine_reload_errors;
        ] );
      ( "registry",
        [
          Alcotest.test_case "model routing" `Quick
            test_engine_registry_routing;
          Alcotest.test_case "unload and set_default" `Quick
            test_engine_unload_set_default;
          Alcotest.test_case "per-model stats" `Quick test_engine_models_stats;
          Alcotest.test_case "eviction and revival" `Quick
            test_engine_eviction_and_revival;
          Alcotest.test_case "wire ops" `Quick test_daemon_registry;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "byte-identity" `Quick test_session_byte_identity;
          Alcotest.test_case "edit stream" `Quick test_session_edit_stream;
          Alcotest.test_case "no-session" `Quick test_session_no_session;
          Alcotest.test_case "connection isolation" `Quick
            test_session_conn_isolation;
          Alcotest.test_case "hostile edit" `Quick test_session_hostile_edit;
          Alcotest.test_case "eviction" `Quick test_session_eviction;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "byte-identity" `Quick test_daemon_byte_identity;
          Alcotest.test_case "concurrent isolation" `Quick
            test_daemon_concurrent_isolation;
          Alcotest.test_case "garbage and disconnect" `Quick
            test_daemon_garbage_and_disconnect;
          Alcotest.test_case "oversized line" `Quick test_daemon_oversized_line;
          Alcotest.test_case "shutdown request" `Quick
            test_daemon_shutdown_request;
          Alcotest.test_case "stats" `Quick test_daemon_stats;
          Alcotest.test_case "overload shed" `Quick test_daemon_overload_shed;
          Alcotest.test_case "idle timeout" `Quick test_daemon_idle_timeout;
          Alcotest.test_case "connection cap" `Quick test_daemon_max_conns;
          Alcotest.test_case "hot reload" `Quick test_daemon_reload;
        ] );
    ]
