(* Edge cases and failure injection across the stack: empty inputs,
   degenerate programs, deep nesting, malformed sources, and pipeline
   behavior when components receive pathological data. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- lexkit ---------- *)

let test_cursor_basics () =
  let c = Lexkit.Cursor.make "ab\nc" in
  Alcotest.(check (option char)) "peek" (Some 'a') (Lexkit.Cursor.peek c);
  Alcotest.(check (option char)) "peek2" (Some 'b') (Lexkit.Cursor.peek2 c);
  check_bool "not eof" false (Lexkit.Cursor.eof c);
  Alcotest.(check char) "next" 'a' (Lexkit.Cursor.next c);
  ignore (Lexkit.Cursor.next c);
  ignore (Lexkit.Cursor.next c);
  let pos = Lexkit.Cursor.pos c in
  check_int "line after newline" 2 pos.Lexkit.line;
  check_int "col reset" 1 pos.Lexkit.col;
  ignore (Lexkit.Cursor.next c);
  check_bool "eof" true (Lexkit.Cursor.eof c);
  match Lexkit.Cursor.next c with
  | _ -> Alcotest.fail "expected error at eof"
  | exception Lexkit.Error _ -> ()

let test_cursor_take_skip () =
  let c = Lexkit.Cursor.make "aaabbb" in
  Alcotest.(check string) "take" "aaa" (Lexkit.Cursor.take_while c (( = ) 'a'));
  Lexkit.Cursor.skip_while c (( = ) 'b');
  check_bool "consumed" true (Lexkit.Cursor.eof c);
  check_bool "eat on empty" false (Lexkit.Cursor.eat c 'x')

let test_string_escapes () =
  let c = Lexkit.Cursor.make "a\\n\\t\\\\\\\"b\"rest" in
  Alcotest.(check string) "decoded" "a\n\t\\\"b"
    (Lexkit.lex_string_literal c ~quote:'"');
  Alcotest.(check string) "cursor after quote" "rest"
    (Lexkit.Cursor.take_while c (fun _ -> true))

let test_lex_number_forms () =
  let num s =
    let c = Lexkit.Cursor.make s in
    Lexkit.lex_number c
  in
  Alcotest.(check string) "int" "42" (num "42");
  Alcotest.(check string) "decimal" "3.14" (num "3.14xyz");
  (* "1." is not a decimal here: the dot needs a following digit *)
  Alcotest.(check string) "trailing dot not eaten" "1" (num "1.x")

(* ---------- degenerate programs ---------- *)

let test_empty_programs () =
  check_int "js empty" 0 (List.length (Minijs.Parser.parse ""));
  check_int "python empty" 0 (List.length (Minipython.Parser.parse ""));
  check_int "python blank lines" 0
    (List.length (Minipython.Parser.parse "\n\n   \n# comment\n"));
  let tree = Minijs.Lower.program [] in
  check_int "empty toplevel" 1 (Ast.Tree.size tree)

let test_single_token_program () =
  let tree = Minijs.Lower.program (Minijs.Parser.parse "x;") in
  let idx = Ast.Index.build tree in
  check_int "two nodes" 2 (Ast.Index.size idx);
  Alcotest.(check (list string)) "no contexts at all" []
    (List.map Astpath.Context.to_string
       (Astpath.Extract.leaf_pairs idx Astpath.Config.default))

let test_deep_nesting () =
  (* 60 nested if statements: parser recursion and path extraction must
     both survive; length limits keep extraction linear-ish. *)
  let buf = Buffer.create 1024 in
  for _ = 1 to 60 do
    Buffer.add_string buf "if (c) { "
  done;
  Buffer.add_string buf "x = 1; ";
  for _ = 1 to 60 do
    Buffer.add_string buf "} "
  done;
  let tree = Minijs.Lower.program (Minijs.Parser.parse (Buffer.contents buf)) in
  let idx = Ast.Index.build tree in
  check_bool "deep tree" true (Ast.Index.depth idx (Ast.Index.size idx - 1) > 30);
  let contexts =
    Astpath.Extract.leaf_pairs idx (Astpath.Config.make ~max_length:4 ~max_width:2 ())
  in
  List.iter
    (fun c ->
      check_bool "length respected" true
        (Astpath.Path.length (Astpath.Context.path c) <= 4))
    contexts

let test_long_flat_program () =
  (* Fig. 6 of the paper: small max length, large width. *)
  let src =
    String.concat "\n"
      (List.init 50 (fun i -> Printf.sprintf "assert.equal(a%d, 1);" i))
  in
  let tree = Minijs.Lower.program (Minijs.Parser.parse src) in
  let idx = Ast.Index.build tree in
  let narrow =
    Astpath.Extract.leaf_pairs idx (Astpath.Config.make ~max_length:8 ~max_width:1 ())
  in
  let wide =
    Astpath.Extract.leaf_pairs idx (Astpath.Config.make ~max_length:8 ~max_width:30 ())
  in
  check_bool "width controls cross-statement pairs" true
    (List.length wide > 2 * List.length narrow)

let test_unicode_strings () =
  match Minijs.Parser.parse "var s = \"héllo wörld ≠\";" with
  | [ Minijs.Syntax.VarDecl [ (_, Some (Minijs.Syntax.Str v)) ] ] ->
      check_bool "bytes preserved" true (String.length v > 5)
  | _ -> Alcotest.fail "unicode string"

(* ---------- malformed sources through the task pipeline ---------- *)

let test_pipeline_skips_bad_files () =
  let lang = Pigeon.Lang.javascript in
  let repr = Pigeon.Graphs.default_repr () in
  let graphs =
    Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
      [
        ("good.js", "var x = 1; use(x);");
        ("bad.js", "function ( { nope");
        ("worse.js", "var \"unterminated");
      ]
  in
  check_int "only the good file" 1 (List.length graphs)

let test_graph_no_unknowns () =
  (* A program with no locals at all: the graph trains/predicts without
     crashing and evaluates to zero pairs. *)
  let lang = Pigeon.Lang.javascript in
  let repr = Pigeon.Graphs.default_repr () in
  let g =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals
      (lang.Pigeon.Lang.parse_tree "console.log(\"hi\");")
  in
  check_int "no unknowns" 0 (Crf.Graph.num_unknown g);
  let model = Crf.Train.train [ g ] in
  let pred = Crf.Train.predict model g in
  check_int "assignment covers nodes" (Array.length g.Crf.Graph.nodes)
    (Array.length pred)

let test_train_on_empty () =
  let model = Crf.Train.train [] in
  check_int "no labels" 0 (Crf.Candidates.num_labels (Lazy.force model.Crf.Train.candidates))

let test_duplicate_role_pair () =
  (* Two locals of the same role in one function must still both get
     predictions (and the graph must not conflate them). *)
  let lang = Pigeon.Lang.javascript in
  let src = "function f(items, values) { use(items); use(values); }" in
  let repr = Pigeon.Graphs.default_repr () in
  let g =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals (lang.Pigeon.Lang.parse_tree src)
  in
  check_int "two unknowns" 2 (Crf.Graph.num_unknown g)

(* ---------- metrics edge cases ---------- *)

let test_metrics_edges () =
  check_bool "empty strings match" true (Pigeon.Metrics.exact_match ~gold:"" ~pred:"");
  check_bool "punct-only equals empty" true
    (Pigeon.Metrics.exact_match ~gold:"__" ~pred:"");
  Alcotest.(check (list string)) "digits kept" [ "v2" ] (Pigeon.Metrics.subtokens "v2");
  let c = Pigeon.Metrics.f1_counts ~gold:"" ~pred:"x" in
  Alcotest.(check (float 0.)) "f1 with empty gold" 0. (Pigeon.Metrics.f1_of_counts c);
  let s = Pigeon.Metrics.summarize [] in
  check_int "empty summary" 0 s.Pigeon.Metrics.n

(* ---------- downsampling determinism in graphs ---------- *)

let test_graph_downsample_deterministic () =
  let lang = Pigeon.Lang.javascript in
  let tree = lang.Pigeon.Lang.parse_tree "var a = 1; var b = a + 2; use(a, b);" in
  let repr =
    { (Pigeon.Graphs.default_repr ()) with Pigeon.Graphs.downsample_p = 0.5 }
  in
  let g1 =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  let g2 =
    Pigeon.Graphs.build repr ~def_labels:lang.Pigeon.Lang.def_labels
      ~policy:Pigeon.Graphs.Locals tree
  in
  check_int "same factor count" (List.length g1.Crf.Graph.factors)
    (List.length g2.Crf.Graph.factors)

let suite =
  [
    ( "lexkit",
      [
        Alcotest.test_case "cursor basics" `Quick test_cursor_basics;
        Alcotest.test_case "take/skip/eat" `Quick test_cursor_take_skip;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
        Alcotest.test_case "number forms" `Quick test_lex_number_forms;
      ] );
    ( "degenerate-programs",
      [
        Alcotest.test_case "empty programs" `Quick test_empty_programs;
        Alcotest.test_case "single token" `Quick test_single_token_program;
        Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
        Alcotest.test_case "long flat program (fig 6)" `Quick test_long_flat_program;
        Alcotest.test_case "unicode strings" `Quick test_unicode_strings;
      ] );
    ( "failure-injection",
      [
        Alcotest.test_case "pipeline skips bad files" `Quick test_pipeline_skips_bad_files;
        Alcotest.test_case "graph with no unknowns" `Quick test_graph_no_unknowns;
        Alcotest.test_case "training on empty corpus" `Quick test_train_on_empty;
        Alcotest.test_case "duplicate-role pair" `Quick test_duplicate_role_pair;
      ] );
    ("metrics-edges", [ Alcotest.test_case "edges" `Quick test_metrics_edges ]);
    ( "determinism",
      [
        Alcotest.test_case "graph downsampling" `Quick test_graph_downsample_deterministic;
      ] );
  ]

let () = Alcotest.run "edge" suite
