(* Incremental extraction: subtree identity (Intern.Keytab +
   Ast.Ident), the session path-context cache (Astpath.Cache), and the
   hard contract behind both — cached extraction is byte-identical, in
   content and order, to from-scratch extraction at every step of an
   edit trace. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_strings = Alcotest.(check (list string))

let js = Pigeon.Lang.javascript
let parse src = js.Pigeon.Lang.parse_tree src

let trace_config ~funcs ~seed =
  {
    Corpus.Gen.default with
    Corpus.Gen.min_funcs = funcs;
    max_funcs = funcs;
    seed;
  }

let trace ?(funcs = 6) ~steps ~seed () =
  Corpus.Gen.edit_trace ~steps (trace_config ~funcs ~seed) Corpus.Render.Js

(* Rendered context stream of a from-scratch extraction. *)
let scratch_strings tree cfg =
  let idx = Ast.Index.build tree in
  let tab = Astpath.Context.Tab.create idx in
  let acc = ref [] in
  Astpath.Extract.iter_all ~tab idx cfg (fun c ->
      acc := Astpath.Context.to_string c :: !acc);
  List.rev !acc

let cached_strings cache tree cfg =
  let idx = Astpath.Cache.index cache tree in
  let acc = ref [] in
  Astpath.Extract.iter_all_cached ~cache idx cfg (fun c ->
      acc := Astpath.Context.to_string c :: !acc);
  List.rev !acc

(* ---------- Keytab ---------- *)

let test_keytab_basic () =
  let t = Intern.Keytab.create () in
  check_int "first id" 0 (Intern.Keytab.intern t [| 1; 2; 3 |]);
  check_int "second id" 1 (Intern.Keytab.intern t [| 1; 2 |]);
  check_int "stable" 0 (Intern.Keytab.intern t [| 1; 2; 3 |]);
  check_int "size" 2 (Intern.Keytab.size t);
  check_bool "round trip" true (Intern.Keytab.get t 1 = [| 1; 2 |])

let test_keytab_sub () =
  (* [intern_sub] probes against a scratch prefix and must copy only
     the live prefix — trailing garbage is invisible. *)
  let t = Intern.Keytab.create () in
  let buf = [| 7; 8; 9; 999; 999 |] in
  let id = Intern.Keytab.intern_sub t buf ~len:3 in
  check_bool "prefix copied" true (Intern.Keytab.get t id = [| 7; 8; 9 |]);
  buf.(0) <- 7;
  buf.(3) <- -1;
  check_int "same prefix, same id" id (Intern.Keytab.intern_sub t buf ~len:3);
  check_int "shorter prefix is distinct" (id + 1)
    (Intern.Keytab.intern_sub t buf ~len:2)

let test_keytab_growth () =
  let t = Intern.Keytab.create ~hint:2 () in
  for i = 0 to 4_000 do
    check_int "dense" i (Intern.Keytab.intern t [| i; i + 1 |])
  done;
  check_int "stable after growth" 1234 (Intern.Keytab.intern t [| 1234; 1235 |])

(* ---------- Ast.Ident ---------- *)

let test_ident_stable_across_builds () =
  (* Two indexes of the same source against one session's tables must
     assign identical identity ids node for node. *)
  let src = List.hd (trace ~steps:0 ~seed:11 ()) in
  let labels = Intern.Strtab.create () in
  let syms = Intern.Strtab.create () in
  let tab = Intern.Keytab.create () in
  let ids idx = Ast.Ident.assign ~syms ~tab idx in
  let a = ids (Ast.Index.build ~labels (parse src)) in
  let b = ids (Ast.Index.build ~labels (parse src)) in
  check_bool "identical trees, identical ids" true (a = b)

let test_ident_distinguishes_values () =
  (* Same shape, different terminal value: roots must differ. *)
  let t1 = parse "function f(a) { return a; }" in
  let t2 = parse "function f(b) { return b; }" in
  let syms = Intern.Strtab.create () in
  let tab = Intern.Keytab.create () in
  let labels = Intern.Strtab.create () in
  let root_id t = (Ast.Ident.assign ~syms ~tab (Ast.Index.build ~labels t)).(0) in
  check_bool "renamed variable changes the root identity" true
    (root_id t1 <> root_id t2);
  check_int "same source, same root identity" (root_id t1) (root_id t1)

let test_ident_shares_across_edit () =
  (* An edit to one function must keep the identity ids of the other
     functions' subtrees. *)
  let steps = trace ~steps:1 ~seed:3 () in
  let src0 = List.nth steps 0 and src1 = List.nth steps 1 in
  let labels = Intern.Strtab.create () in
  let syms = Intern.Strtab.create () in
  let tab = Intern.Keytab.create () in
  let idents src =
    let idx = Ast.Index.build ~labels (parse src) in
    let ids = Ast.Ident.assign ~syms ~tab idx in
    (idx, ids)
  in
  let _, ids0 = idents src0 in
  let _, ids1 = idents src1 in
  let module S = Set.Make (Int) in
  let set ids = S.of_list (Array.to_list ids) in
  let shared = S.cardinal (S.inter (set ids0) (set ids1)) in
  check_bool "edited buffer shares subtree identities" true (shared > 10)

(* ---------- byte-identity: the hard contract ---------- *)

let assert_trace_identical ?unit_size ?max_bytes ~cfg steps =
  let cache = Astpath.Cache.create ?unit_size ?max_bytes () in
  List.iteri
    (fun i src ->
      let tree = parse src in
      check_strings
        (Printf.sprintf "edit %d: cached = from-scratch" i)
        (scratch_strings tree cfg)
        (cached_strings cache tree cfg))
    steps;
  cache

let tuned = js.Pigeon.Lang.tuned

let test_trace_identity_tuned () =
  let cache = assert_trace_identical ~cfg:tuned (trace ~steps:8 ~seed:42 ()) in
  let s = Astpath.Cache.stats cache in
  check_bool "cache actually hit" true (s.Astpath.Cache.hits > 0);
  check_bool "contexts replayed" true (Astpath.Cache.replayed cache > 0)

let test_trace_identity_no_semi () =
  let cfg = Astpath.Config.make ~max_length:5 ~max_width:2 () in
  ignore (assert_trace_identical ~cfg (trace ~steps:6 ~seed:7 ()))

let test_identical_rebuild_hits () =
  (* Re-extracting an unchanged buffer must hit on every unit. *)
  let src = List.hd (trace ~steps:0 ~seed:19 ()) in
  let cache = assert_trace_identical ~cfg:tuned [ src; src; src ] in
  let s = Astpath.Cache.stats cache in
  check_bool "second and third builds are pure replays" true
    (s.Astpath.Cache.hits >= 2 * s.Astpath.Cache.misses)

let test_unit_size_extremes () =
  (* Degenerate partitions must not change the stream: unit_size 1
     (every leaf its own unit) and unit_size huge (whole tree one
     unit). *)
  let steps = trace ~steps:4 ~seed:23 () in
  ignore (assert_trace_identical ~unit_size:1 ~cfg:tuned steps);
  ignore (assert_trace_identical ~unit_size:1_000_000 ~cfg:tuned steps)

let test_tiny_budget_identity () =
  (* A 1-byte budget evicts everything after every extract; output must
     stay identical, evictions must be observable. *)
  let cache =
    assert_trace_identical ~max_bytes:1 ~cfg:tuned (trace ~steps:5 ~seed:31 ())
  in
  let s = Astpath.Cache.stats cache in
  check_bool "budget enforced" true (s.Astpath.Cache.evictions > 0);
  check_bool "budget respected" true (Astpath.Cache.bytes cache <= 1)

let test_config_change_flushes () =
  (* Switching limits mid-session must flush, not corrupt. *)
  let src = List.hd (trace ~steps:0 ~seed:47 ()) in
  let tree = parse src in
  let cache = Astpath.Cache.create () in
  let narrow = Astpath.Config.make ~max_length:3 ~max_width:1 () in
  check_strings "tuned pass" (scratch_strings tree tuned)
    (cached_strings cache tree tuned);
  check_strings "narrow pass after flush" (scratch_strings tree narrow)
    (cached_strings cache tree narrow);
  check_strings "back to tuned" (scratch_strings tree tuned)
    (cached_strings cache tree tuned)

let test_foreign_index_rejected () =
  let src = List.hd (trace ~steps:0 ~seed:5 ()) in
  let idx = Ast.Index.build (parse src) in
  let cache = Astpath.Cache.create () in
  check_bool "index without the session label table is rejected" true
    (match Astpath.Extract.iter_all_cached ~cache idx tuned ignore with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_cache_stats_counters () =
  let cache = Astpath.Cache.create () in
  let s0 = Astpath.Cache.stats cache in
  check_int "fresh hits" 0 s0.Astpath.Cache.hits;
  check_int "fresh misses" 0 s0.Astpath.Cache.misses;
  check_int "fresh bytes" 0 s0.Astpath.Cache.bytes;
  let src = List.hd (trace ~steps:0 ~seed:53 ()) in
  ignore (cached_strings cache (parse src) tuned);
  let s1 = Astpath.Cache.stats cache in
  check_bool "first build misses" true (s1.Astpath.Cache.misses > 0);
  check_int "first build cannot hit" 0 s1.Astpath.Cache.hits;
  check_bool "paths stored" true (s1.Astpath.Cache.cached_paths > 0);
  check_bool "bytes accounted" true (s1.Astpath.Cache.bytes > 0);
  ignore (cached_strings cache (parse src) tuned);
  let s2 = Astpath.Cache.stats cache in
  check_bool "rebuild hits" true (s2.Astpath.Cache.hits > 0)

(* ---------- semi-path downsampling (pre-filter) ---------- *)

let test_semi_downsample_prefilter () =
  let src = List.hd (trace ~steps:0 ~seed:61 ()) in
  let idx = Ast.Index.build (parse src) in
  let cfg =
    Astpath.Config.make ~include_semi_paths:true ~max_length:7 ~max_width:3 ()
  in
  let collect ?downsample () =
    let acc = ref [] in
    Astpath.Extract.iter_semi_paths ?downsample idx cfg (fun c ->
        acc := Astpath.Context.to_string c :: !acc);
    List.rev !acc
  in
  let full = collect () in
  let sampled seed =
    collect ~downsample:(Random.State.make [| seed |], 0.4) ()
  in
  check_strings "same seed, same kept set" (sampled 9) (sampled 9);
  check_strings "p = 1.0 keeps everything" full
    (collect ~downsample:(Random.State.make [| 1 |], 1.0) ());
  (* Kept set is a sub-sequence of the full enumeration. *)
  let rec subseq xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'
  in
  check_bool "kept set is a sub-sequence" true (subseq (sampled 9) full);
  check_bool "p = 0.4 actually drops" true
    (List.length (sampled 9) < List.length full)

(* ---------- property: random edit sequences ---------- *)

let prop_random_trace_identity =
  QCheck2.Test.make ~name:"cache: incremental = from-scratch on random traces"
    ~count:12
    QCheck2.Gen.(
      triple (int_range 1 1000) (int_range 1 6) (int_range 2 5))
    (fun (seed, steps, funcs) ->
      let cache = Astpath.Cache.create ~unit_size:96 () in
      List.for_all
        (fun src ->
          let tree = parse src in
          scratch_strings tree tuned = cached_strings cache tree tuned)
        (trace ~funcs ~steps ~seed ()))

let prop_random_trace_identity_budget =
  QCheck2.Test.make
    ~name:"cache: identity holds under random tiny byte budgets" ~count:8
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 50_000))
    (fun (seed, max_bytes) ->
      let cache = Astpath.Cache.create ~max_bytes () in
      List.for_all
        (fun src ->
          let tree = parse src in
          scratch_strings tree tuned = cached_strings cache tree tuned)
        (trace ~funcs:3 ~steps:3 ~seed ()))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "keytab",
      [
        Alcotest.test_case "basic" `Quick test_keytab_basic;
        Alcotest.test_case "intern_sub prefix" `Quick test_keytab_sub;
        Alcotest.test_case "growth" `Quick test_keytab_growth;
      ] );
    ( "ident",
      [
        Alcotest.test_case "stable across builds" `Quick
          test_ident_stable_across_builds;
        Alcotest.test_case "distinguishes values" `Quick
          test_ident_distinguishes_values;
        Alcotest.test_case "shares across an edit" `Quick
          test_ident_shares_across_edit;
      ] );
    ( "cache",
      [
        Alcotest.test_case "trace identity (tuned)" `Quick
          test_trace_identity_tuned;
        Alcotest.test_case "trace identity (no semi-paths)" `Quick
          test_trace_identity_no_semi;
        Alcotest.test_case "identical rebuild hits" `Quick
          test_identical_rebuild_hits;
        Alcotest.test_case "unit-size extremes" `Quick test_unit_size_extremes;
        Alcotest.test_case "tiny byte budget" `Quick test_tiny_budget_identity;
        Alcotest.test_case "config change flushes" `Quick
          test_config_change_flushes;
        Alcotest.test_case "foreign index rejected" `Quick
          test_foreign_index_rejected;
        Alcotest.test_case "stats counters" `Quick test_cache_stats_counters;
      ] );
    ( "downsample",
      [
        Alcotest.test_case "semi-path pre-filter" `Quick
          test_semi_downsample_prefilter;
      ] );
    ( "properties",
      qcheck [ prop_random_trace_identity; prop_random_trace_identity_budget ]
    );
  ]

let () = Alcotest.run "incremental" suite
