(* Golden equivalence for the fast extraction engine.

   [Ref] below is the seed's extraction implementation, kept verbatim:
   parent-chain LCA, chain-walk width, list-allocating context
   construction, quadratic pair scan. The iterator engine must emit the
   exact same multiset of ⟨start, path, end⟩ contexts — in fact the
   same sequence — on source files from every language front-end
   (minijs, minijava, minipython, minicsharp), on the paper's figure
   trees, and on random trees. *)

open Astpath

module Ref = struct
  let lca idx a b =
    let a = ref a and b = ref b in
    while Ast.Index.depth idx !a > Ast.Index.depth idx !b do
      a := Ast.Index.parent idx !a
    done;
    while Ast.Index.depth idx !b > Ast.Index.depth idx !a do
      b := Ast.Index.parent idx !b
    done;
    while !a <> !b do
      a := Ast.Index.parent idx !a;
      b := Ast.Index.parent idx !b
    done;
    !a

  let child_toward idx ~lca n =
    let rec go n =
      if Ast.Index.parent idx n = lca then n else go (Ast.Index.parent idx n)
    in
    go n

  let width_between idx ~lca a b =
    if a = lca || b = lca then 0
    else
      abs
        (Ast.Index.child_rank idx (child_toward idx ~lca a)
        - Ast.Index.child_rank idx (child_toward idx ~lca b))

  let within idx (cfg : Config.t) a b =
    let l = lca idx a b in
    let len =
      Ast.Index.depth idx a + Ast.Index.depth idx b
      - (2 * Ast.Index.depth idx l)
    in
    len >= 1 && len <= cfg.Config.max_length
    && width_between idx ~lca:l a b <= cfg.Config.max_width

  let node_value idx n =
    match Ast.Index.value idx n with
    | Some v -> v
    | None -> Ast.Index.label idx n

  (* The seed's [Context.make]: walk both chains to the LCA as lists. *)
  let context idx a b =
    let l = lca idx a b in
    let up =
      List.filter (fun n -> n <> l) (Ast.Index.path_up idx a ~stop:l)
      |> List.map (Ast.Index.label idx)
    in
    let down =
      List.filter (fun n -> n <> l) (Ast.Index.path_up idx b ~stop:l)
      |> List.rev
      |> List.map (Ast.Index.label idx)
    in
    ( a,
      b,
      node_value idx a,
      node_value idx b,
      Path.of_chain ~up ~top:(Ast.Index.label idx l) ~down )

  let leaf_pairs idx (cfg : Config.t) =
    let leaves = Ast.Index.leaves idx in
    let n = Array.length leaves in
    let acc = ref [] in
    for j = n - 1 downto 1 do
      for i = j - 1 downto 0 do
        let a = leaves.(i) and b = leaves.(j) in
        if within idx cfg a b then acc := context idx a b :: !acc
      done
    done;
    !acc

  let semi_paths idx (cfg : Config.t) =
    let leaves = Ast.Index.leaves idx in
    let acc = ref [] in
    Array.iter
      (fun leaf ->
        let rec go node steps =
          if steps <= cfg.Config.max_length && node <> -1 then begin
            acc := context idx leaf node :: !acc;
            go (Ast.Index.parent idx node) (steps + 1)
          end
        in
        go (Ast.Index.parent idx leaf) 1)
      leaves;
    List.rev !acc

  let leaf_to_node idx (cfg : Config.t) ~target =
    let leaves = Ast.Index.leaves idx in
    let acc = ref [] in
    Array.iter
      (fun leaf ->
        if leaf <> target && within idx cfg leaf target then
          acc := context idx leaf target :: !acc)
      leaves;
    List.rev !acc
end

let render (a, b, va, vb, p) =
  Printf.sprintf "%d|%d|%s|%s|%s" a b va vb (Path.to_string p)

let render_ctx (c : Context.t) =
  Printf.sprintf "%d|%d|%s|%s|%s" c.Context.start_node c.Context.end_node
    (Context.start_value c) (Context.end_value c)
    (Path.to_string (Context.path c))

let check_equiv name idx cfg =
  let expected = List.map render (Ref.leaf_pairs idx cfg) in
  let got = List.map render_ctx (Extract.leaf_pairs idx cfg) in
  Alcotest.(check (list string))
    (name ^ ": multiset of pairwise contexts")
    (List.sort String.compare expected)
    (List.sort String.compare got);
  Alcotest.(check (list string)) (name ^ ": emission order") expected got;
  let streamed = ref [] in
  Extract.iter idx cfg (fun c -> streamed := render_ctx c :: !streamed);
  Alcotest.(check (list string))
    (name ^ ": iter = leaf_pairs")
    got
    (List.rev !streamed);
  Alcotest.(check int)
    (name ^ ": count_within")
    (List.length expected) (Extract.count_within idx cfg);
  Alcotest.(check (list string))
    (name ^ ": semi-paths")
    (List.map render (Ref.semi_paths idx cfg))
    (List.map render_ctx (Extract.semi_paths idx cfg))

let check_leaf_to_node name idx cfg =
  (* Every nonterminal that carries at least two descendant leaves is a
     plausible full-type target; spot-check the first few. *)
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  let targets =
    take 5
      (List.filter
         (fun i -> not (Ast.Index.is_leaf idx i))
         (List.init (Ast.Index.size idx) Fun.id))
  in
  List.iter
    (fun target ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s: leaf_to_node target %d" name target)
        (List.map render (Ref.leaf_to_node idx cfg ~target))
        (List.map render_ctx (Extract.leaf_to_node idx cfg ~target)))
    targets

let configs =
  [
    ("tight-4-2", Config.make ~max_length:4 ~max_width:2 ());
    ("paper-7-3", Config.make ~max_length:7 ~max_width:3 ());
    ("wide-12-8", Config.make ~max_length:12 ~max_width:8 ());
  ]

let lang_case (lang : Pigeon.Lang.t) () =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = 8; seed = 41 } in
  let sources =
    Corpus.Gen.generate_sources config lang.Pigeon.Lang.render_lang
  in
  let checked = ref 0 in
  List.iteri
    (fun i (_, src) ->
      match lang.Pigeon.Lang.parse_tree src with
      | exception Lexkit.Error _ -> ()
      | tree ->
          let idx = Ast.Index.build tree in
          List.iter
            (fun (cname, cfg) ->
              let name =
                Printf.sprintf "%s[%d] %s" lang.Pigeon.Lang.name i cname
              in
              check_equiv name idx cfg;
              check_leaf_to_node name idx cfg)
            configs;
          incr checked)
    sources;
  Alcotest.(check bool)
    (lang.Pigeon.Lang.name ^ ": fixtures parsed")
    true (!checked >= 4)

(* The paper's hand-built figure trees. *)
let fig_trees =
  [
    ( "fig1",
      Ast.Tree.(
        nt "While"
          [
            nt "UnaryPrefix!" [ var 0 "SymbolRef" "d" ];
            nt "If"
              [
                nt "Call" [ term ~sort:Name "SymbolRef" "someCondition" ];
                nt "Assign="
                  [ var 0 "SymbolRef" "d"; term ~sort:Lit "True" "true" ];
              ];
          ]) );
    ( "fig4",
      Ast.Tree.(
        nt "VarDef"
          [
            var 0 "SymbolVar" "item";
            nt "Sub" [ var 1 "SymbolRef" "array"; var 2 "SymbolRef" "i" ];
          ]) );
    ( "fig5",
      Ast.Tree.(
        nt "Var"
          (List.map
             (fun (i, n) -> nt "VarDef" [ var i "SymbolVar" n ])
             [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ])) );
  ]

let fig_case () =
  List.iter
    (fun (name, tree) ->
      let idx = Ast.Index.build tree in
      List.iter
        (fun (cname, cfg) ->
          check_equiv (name ^ " " ^ cname) idx cfg;
          check_leaf_to_node (name ^ " " ^ cname) idx cfg)
        configs)
    fig_trees

(* The interned representation must render exactly what the seed's
   string-holding contexts printed: ⟨start, path, end⟩ composed from
   the string views, arrows and all. *)
let to_string_case () =
  List.iter
    (fun (name, tree) ->
      let idx = Ast.Index.build tree in
      List.iter
        (fun (cname, cfg) ->
          List.iter
            (fun (c : Context.t) ->
              let seed =
                Printf.sprintf "\xe2\x9f\xa8%s, %s, %s\xe2\x9f\xa9"
                  (Context.start_value c)
                  (Path.to_string (Context.path c))
                  (Context.end_value c)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s %s: to_string" name cname)
                seed (Context.to_string c);
              Alcotest.(check string)
                (Printf.sprintf "%s %s: pp" name cname)
                seed
                (Format.asprintf "%a" Context.pp c))
            (Extract.leaf_pairs idx cfg @ Extract.semi_paths idx cfg))
        configs)
    fig_trees

(* ---------- property: equivalence on random trees ---------- *)

let gen_tree =
  let open QCheck2.Gen in
  sized_size (int_range 1 40) @@ fix (fun self n ->
      if n <= 1 then
        map2
          (fun l v ->
            Ast.Tree.term ("T" ^ string_of_int l) ("v" ^ string_of_int v))
          (int_range 0 4) (int_range 0 9)
      else
        let* k = int_range 1 (min 4 n) in
        let* lbl = int_range 0 4 in
        let+ cs = list_repeat k (self (n / k)) in
        Ast.Tree.nt ("N" ^ string_of_int lbl) cs)

let gen_cfg =
  QCheck2.Gen.(
    map2
      (fun l w -> Config.make ~max_length:l ~max_width:w ())
      (int_range 1 12) (int_range 0 6))

let prop_equiv =
  QCheck2.Test.make ~name:"iterator engine = seed reference" ~count:300
    QCheck2.Gen.(pair gen_tree gen_cfg)
    (fun (t, cfg) ->
      let idx = Ast.Index.build t in
      List.map render (Ref.leaf_pairs idx cfg)
      = List.map render_ctx (Extract.leaf_pairs idx cfg)
      && List.map render (Ref.semi_paths idx cfg)
         = List.map render_ctx (Extract.semi_paths idx cfg)
      && Extract.count_within idx cfg = List.length (Ref.leaf_pairs idx cfg))

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "golden",
      Alcotest.test_case "paper figure trees" `Quick fig_case
      :: Alcotest.test_case "context rendering vs seed" `Quick to_string_case
      :: List.map
           (fun (lang : Pigeon.Lang.t) ->
             Alcotest.test_case
               (lang.Pigeon.Lang.name ^ " corpus")
               `Quick (lang_case lang))
           Pigeon.Lang.all );
    ("properties", qcheck [ prop_equiv ]);
  ]

let () = Alcotest.run "golden_extract" suite
