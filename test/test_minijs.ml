(* Tests for the MiniJS front-end: lexer, parser, printer round-trips,
   lowering and name stripping. *)

open Minijs

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let fig1a = "while (!d) {\n  if (someCondition()) {\n    d = true;\n  }\n}\n"

let fig3a =
  "var d = false;\n\
   while(!d) {\n\
  \  doSomething();\n\
  \  if (someCondition()) {\n\
  \    d = true;\n\
  \  }\n\
   }\n"

let fig8 =
  "function f(a, b, c) {\n\
  \  b.open('GET', a, false);\n\
  \  b.send(c);\n\
   }\n"

(* ---------- lexer ---------- *)

let lex_toks src =
  List.map (fun { Token.tok; _ } -> tok) (Lexer.tokenize src)

let test_lex_basic () =
  let toks = lex_toks "var x = 1;" in
  Alcotest.(check int) "count with eof" 6 (List.length toks);
  check_bool "kw var" true (Token.equal (List.nth toks 0) (Token.Kw "var"));
  check_bool "ident" true (Token.equal (List.nth toks 1) (Token.Ident "x"));
  check_bool "punct =" true (Token.equal (List.nth toks 2) (Token.Punct "="));
  check_bool "num" true (Token.equal (List.nth toks 3) (Token.Num "1"))

let test_lex_longest_match () =
  let toks = lex_toks "a === b == c = d" in
  let puncts =
    List.filter_map (function Token.Punct p -> Some p | _ -> None) toks
  in
  Alcotest.(check (list string)) "ordered" [ "==="; "=="; "=" ] puncts

let test_lex_strings () =
  let toks = lex_toks {|x = "he\"llo" + 'wo\nrld'|} in
  let strs = List.filter_map (function Token.Str s -> Some s | _ -> None) toks in
  Alcotest.(check (list string)) "escapes" [ "he\"llo"; "wo\nrld" ] strs

let test_lex_comments () =
  let toks = lex_toks "a // line comment\n + /* block\ncomment */ b" in
  check_int "only a + b and eof" 4 (List.length toks)

let test_lex_numbers () =
  let toks = lex_toks "1 2.5 0.125 42" in
  let nums = List.filter_map (function Token.Num n -> Some n | _ -> None) toks in
  Alcotest.(check (list string)) "lexemes" [ "1"; "2.5"; "0.125"; "42" ] nums

let test_lex_positions () =
  let spanned = Lexer.tokenize "a\n  b" in
  let b = List.nth spanned 1 in
  check_int "line" 2 b.Token.pos.Lexkit.line;
  check_int "col" 3 b.Token.pos.Lexkit.col

let test_lex_error () =
  (match Lexer.tokenize "a # b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexkit.Error _ -> ());
  match Lexer.tokenize "\"unterminated" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexkit.Error _ -> ()

(* ---------- parser ---------- *)

let test_parse_fig1a () =
  match Parser.parse fig1a with
  | [ Syntax.While (Syntax.Unary ("!", Syntax.Ident "d"), [ Syntax.If (_, [ Syntax.Expr (Syntax.Assign ("=", Syntax.Ident "d", Syntax.Bool true)) ], None) ]) ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse of fig 1a"

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 == 7 && !x" in
  match e with
  | Syntax.Binary ("&&", Syntax.Binary ("==", Syntax.Binary ("+", _, Syntax.Binary ("*", _, _)), _), Syntax.Unary ("!", _)) ->
      ()
  | _ -> Alcotest.fail "precedence mis-parse"

let test_parse_assoc () =
  (match Parser.parse_expr "a - b - c" with
  | Syntax.Binary ("-", Syntax.Binary ("-", _, _), _) -> ()
  | _ -> Alcotest.fail "left assoc");
  match Parser.parse_expr "a = b = c" with
  | Syntax.Assign ("=", _, Syntax.Assign ("=", _, _)) -> ()
  | _ -> Alcotest.fail "right assoc assignment"

let test_parse_member_chain () =
  match Parser.parse_expr "a.b[0].c(1, 2).d" with
  | Syntax.Member (Syntax.Call (Syntax.Member (Syntax.Index (Syntax.Member (Syntax.Ident "a", "b"), _), "c"), [ _; _ ]), "d") ->
      ()
  | _ -> Alcotest.fail "member chain"

let test_parse_new () =
  match Parser.parse_expr "new Foo(1)" with
  | Syntax.New (Syntax.Ident "Foo", [ Syntax.Num "1" ]) -> ()
  | _ -> Alcotest.fail "new"

let test_parse_for () =
  match Parser.parse "for (var i = 0; i < n; i++) { f(i); }" with
  | [ Syntax.For (Some (Syntax.VarDecl [ ("i", Some _) ]), Some _, Some (Syntax.Update ("++", false, _)), [ _ ]) ] ->
      ()
  | _ -> Alcotest.fail "classic for"

let test_parse_forin () =
  match Parser.parse "for (var k in obj) { use(k); }" with
  | [ Syntax.ForIn (true, "k", Syntax.Ident "obj", [ _ ]) ] -> ()
  | _ -> Alcotest.fail "for-in"

let test_parse_try () =
  match Parser.parse "try { f(); } catch (e) { g(e); } finally { h(); }" with
  | [ Syntax.Try ([ _ ], Some ("e", [ _ ]), Some [ _ ]) ] -> ()
  | _ -> Alcotest.fail "try/catch/finally"

let test_parse_func_expr () =
  match Parser.parse "var f = function(x) { return x; };" with
  | [ Syntax.VarDecl [ ("f", Some (Syntax.Func (None, [ "x" ], [ Syntax.Return (Some _) ]))) ] ] ->
      ()
  | _ -> Alcotest.fail "function expression"

let test_parse_object_array () =
  match Parser.parse_expr "{ a: 1, b: [2, 3] }" with
  | Syntax.Object [ ("a", _); ("b", Syntax.Array [ _; _ ]) ] -> ()
  | _ -> Alcotest.fail "object/array"

let test_parse_cond () =
  match Parser.parse_expr "a ? b : c" with
  | Syntax.Cond (_, _, _) -> ()
  | _ -> Alcotest.fail "conditional"

let test_parse_error () =
  match Parser.parse "if (" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Lexkit.Error _ -> ()

(* ---------- printer round-trips ---------- *)

let roundtrip src =
  let p = Parser.parse src in
  let printed = Printer.program_to_string p in
  let p2 = Parser.parse printed in
  check_bool ("round-trip: " ^ src) true (Syntax.equal_program p p2)

let test_roundtrip_corpus () =
  List.iter roundtrip
    [
      fig1a;
      fig3a;
      fig8;
      "var a, b, c, d;";
      "x = a + b * (c - d) / e % f;";
      "if (a) { b(); } else { c(); }";
      "do { x--; } while (x > 0);";
      "for (; ;) { break; }";
      "var o = { k: 1, m: \"s\" };";
      "f(function(a) { return a; });";
      "throw new Error(\"bad\");";
      "x.y.z[0] = -1;";
      "var s = typeof x;";
      "a && b || !c;";
      "i++; --j;";
      "for (k in obj) { f(k); }";
      "x = a ? b : c;";
    ]

(* ---------- lowering ---------- *)

let test_lower_fig1_path () =
  let tree = Lower.program (Parser.parse fig1a) in
  let idx = Ast.Index.build tree in
  let ds = Ast.Index.terminals_with_value idx "d" in
  check_int "two occurrences of d" 2 (List.length ds);
  let a = List.nth ds 0 and b = List.nth ds 1 in
  let c = Astpath.Context.make ~idx ~start_node:a ~end_node:b in
  check_string "paper path I"
    "SymbolRef\xe2\x86\x91UnaryPrefix!\xe2\x86\x91While\xe2\x86\x93If\xe2\x86\x93Assign=\xe2\x86\x93SymbolRef"
    (Astpath.Path.to_string (Astpath.Context.path c))

let test_lower_example45 () =
  let tree = Lower.program (Parser.parse "var item = array[i];") in
  let idx = Ast.Index.build tree in
  let item = List.hd (Ast.Index.terminals_with_value idx "item") in
  let array = List.hd (Ast.Index.terminals_with_value idx "array") in
  let c = Astpath.Context.make ~idx ~start_node:item ~end_node:array in
  check_string "paper example 4.5"
    "SymbolVar\xe2\x86\x91VarDef\xe2\x86\x93Sub\xe2\x86\x93SymbolRef"
    (Astpath.Path.to_string (Astpath.Context.path c))

let binder_of idx v =
  match Ast.Index.sort idx (List.hd (Ast.Index.terminals_with_value idx v)) with
  | Some (Ast.Tree.Var i) -> Some i
  | _ -> None

let test_lower_scoping () =
  let tree = Lower.program (Parser.parse fig3a) in
  let idx = Ast.Index.build tree in
  (* All three occurrences of d share a binder id. *)
  let ds = Ast.Index.terminals_with_value idx "d" in
  check_int "three occurrences" 3 (List.length ds);
  let ids =
    List.filter_map
      (fun n ->
        match Ast.Index.sort idx n with
        | Some (Ast.Tree.Var i) -> Some i
        | _ -> None)
      ds
  in
  check_int "all Var sort" 3 (List.length ids);
  check_bool "same binder" true
    (List.for_all (fun i -> i = List.hd ids) ids);
  (* Undeclared call targets are Name sort. *)
  let sc = List.hd (Ast.Index.terminals_with_value idx "someCondition") in
  check_bool "call target is Name" true (Ast.Index.sort idx sc = Some Ast.Tree.Name)

let test_lower_undeclared_assigned () =
  (* Fig 1a: d never declared, still a local (Var sort). *)
  let tree = Lower.program (Parser.parse fig1a) in
  let idx = Ast.Index.build tree in
  check_bool "d is Var" true (binder_of idx "d" <> None)

let test_lower_params () =
  let tree = Lower.program (Parser.parse fig8) in
  let idx = Ast.Index.build tree in
  List.iter
    (fun v -> check_bool (v ^ " is Var") true (binder_of idx v <> None))
    [ "a"; "b"; "c" ];
  check_bool "f is Var (function decl binds)" true (binder_of idx "f" <> None);
  (* properties open/send are Name *)
  let op = List.hd (Ast.Index.terminals_with_value idx "open") in
  check_bool "property is Name" true (Ast.Index.sort idx op = Some Ast.Tree.Name)

let test_lower_distinct_scopes () =
  let src = "function f(x) { return x; }\nfunction g(x) { return x; }" in
  let tree = Lower.program (Parser.parse src) in
  let idx = Ast.Index.build tree in
  let xs = Ast.Index.terminals_with_value idx "x" in
  check_int "four occurrences" 4 (List.length xs);
  let ids =
    List.filter_map
      (fun n ->
        match Ast.Index.sort idx n with
        | Some (Ast.Tree.Var i) -> Some i
        | _ -> None)
      xs
  in
  let distinct = List.sort_uniq compare ids in
  check_int "two binders" 2 (List.length distinct)

(* ---------- rename / strip ---------- *)

let test_strip_fig3a () =
  let p = Parser.parse fig3a in
  let stripped, mapping = Rename.strip p in
  check_bool "d renamed" true (List.mem_assoc "d" mapping);
  let printed = Printer.program_to_string stripped in
  check_bool "no d left" true
    (not
       (List.exists
          (fun t -> String.equal t "d")
          (Lexer.token_values printed)));
  check_bool "globals kept" true
    (List.exists
       (fun t -> String.equal t "someCondition")
       (Lexer.token_values printed))

let test_rename_respects_scope () =
  let src = "var x = 1; use(x, y);" in
  let p = Parser.parse src in
  let renamed =
    Rename.apply (fun n -> if n = "x" then Some "z" else None) p
  in
  let printed = Printer.program_to_string renamed in
  let toks = Lexer.token_values printed in
  check_bool "x renamed" true (not (List.mem "x" toks));
  check_bool "free y untouched" true (List.mem "y" toks)

let test_rename_roundtrip () =
  (* strip then un-strip restores the program *)
  let p = Parser.parse fig3a in
  let stripped, mapping = Rename.strip p in
  let inverse = List.map (fun (a, b) -> (b, a)) mapping in
  let restored = Rename.apply (fun n -> List.assoc_opt n inverse) stripped in
  check_bool "restored" true (Syntax.equal_program p restored)

let test_local_names_order () =
  let p = Parser.parse "var b = 1; var a = 2; f(a, b);" in
  Alcotest.(check (list string)) "first-appearance order" [ "b"; "a" ]
    (Rename.local_names p)

(* ---------- properties ---------- *)

(* Generator of random MiniJS programs (also reused mentally as a spec
   of the supported subset). *)
let gen_program : Syntax.program QCheck2.Gen.t =
  let open QCheck2.Gen in
  let ident = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 6) in
  let lit =
    oneof
      [
        map (fun n -> Syntax.Num (string_of_int n)) (int_range 0 99);
        map (fun b -> Syntax.Bool b) bool;
        return Syntax.Null;
        map (fun s -> Syntax.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
      ]
  in
  let expr =
    fix
      (fun self n ->
        if n <= 0 then oneof [ map (fun i -> Syntax.Ident i) ident; lit ]
        else
          oneof
            [
              map (fun i -> Syntax.Ident i) ident;
              lit;
              map2 (fun a b -> Syntax.Binary ("+", a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Syntax.Binary ("==", a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Syntax.Unary ("!", a)) (self (n - 1));
              map2 (fun f a -> Syntax.Call (Syntax.Ident f, [ a ])) ident (self (n - 1));
              map2 (fun o i -> Syntax.Index (Syntax.Ident o, i)) ident (self (n - 1));
              map2 (fun o p -> Syntax.Member (o, p)) (self (n - 1)) ident;
            ])
      3
  in
  let stmt =
    fix
      (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun e -> Syntax.Expr e) expr;
              map2 (fun v e -> Syntax.VarDecl [ (v, Some e) ]) ident expr;
              map (fun e -> Syntax.Return (Some e)) expr;
            ]
        else
          oneof
            [
              map (fun e -> Syntax.Expr e) expr;
              map2 (fun v e -> Syntax.VarDecl [ (v, Some e) ]) ident expr;
              map2 (fun c b -> Syntax.If (c, [ b ], None)) expr (self (n - 1));
              map2 (fun c b -> Syntax.While (c, [ b ])) expr (self (n - 1));
              map3
                (fun v o b -> Syntax.ForIn (true, v, o, [ b ]))
                ident expr (self (n - 1));
            ])
      2
  in
  list_size (int_range 1 6) stmt

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"printer/parser round-trip" ~count:300 gen_program
    (fun p ->
      let printed = Printer.program_to_string p in
      match Parser.parse printed with
      | p2 -> Syntax.equal_program p p2
      | exception Lexkit.Error _ -> false)

let prop_lower_total =
  QCheck2.Test.make ~name:"lowering never fails, binders consistent" ~count:300
    gen_program (fun p ->
      let tree = Lower.program p in
      let idx = Ast.Index.build tree in
      (* each binder id maps to a single name *)
      let tbl = Hashtbl.create 16 in
      let ok = ref true in
      for i = 0 to Ast.Index.size idx - 1 do
        match (Ast.Index.sort idx i, Ast.Index.value idx i) with
        | Some (Ast.Tree.Var id), Some v -> (
            match Hashtbl.find_opt tbl id with
            | Some v' -> if not (String.equal v v') then ok := false
            | None -> Hashtbl.add tbl id v)
        | _ -> ()
      done;
      !ok)

let prop_strip_idempotent_shape =
  QCheck2.Test.make ~name:"strip preserves program shape" ~count:300
    gen_program (fun p ->
      let stripped, _ = Rename.strip p in
      let t1 = Lower.program p and t2 = Lower.program stripped in
      (* same tree skeleton: equal label structure *)
      let rec skel t =
        Ast.Tree.label t :: List.concat_map skel (Ast.Tree.children t)
      in
      skel t1 = skel t2)

let qcheck = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "lexer",
      [
        Alcotest.test_case "basic tokens" `Quick test_lex_basic;
        Alcotest.test_case "longest-match puncts" `Quick test_lex_longest_match;
        Alcotest.test_case "string escapes" `Quick test_lex_strings;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "positions" `Quick test_lex_positions;
        Alcotest.test_case "lex errors" `Quick test_lex_error;
      ] );
    ( "parser",
      [
        Alcotest.test_case "fig 1a" `Quick test_parse_fig1a;
        Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "associativity" `Quick test_parse_assoc;
        Alcotest.test_case "member chains" `Quick test_parse_member_chain;
        Alcotest.test_case "new" `Quick test_parse_new;
        Alcotest.test_case "classic for" `Quick test_parse_for;
        Alcotest.test_case "for-in" `Quick test_parse_forin;
        Alcotest.test_case "try/catch/finally" `Quick test_parse_try;
        Alcotest.test_case "function expression" `Quick test_parse_func_expr;
        Alcotest.test_case "object/array literals" `Quick test_parse_object_array;
        Alcotest.test_case "conditional" `Quick test_parse_cond;
        Alcotest.test_case "syntax error" `Quick test_parse_error;
      ] );
    ("printer", [ Alcotest.test_case "round-trip corpus" `Quick test_roundtrip_corpus ]);
    ( "lower",
      [
        Alcotest.test_case "paper path I from source" `Quick test_lower_fig1_path;
        Alcotest.test_case "paper example 4.5 from source" `Quick test_lower_example45;
        Alcotest.test_case "scope resolution" `Quick test_lower_scoping;
        Alcotest.test_case "undeclared-but-assigned is local" `Quick
          test_lower_undeclared_assigned;
        Alcotest.test_case "params and properties" `Quick test_lower_params;
        Alcotest.test_case "distinct scopes, distinct binders" `Quick
          test_lower_distinct_scopes;
      ] );
    ( "rename",
      [
        Alcotest.test_case "strip fig 3a" `Quick test_strip_fig3a;
        Alcotest.test_case "free names untouched" `Quick test_rename_respects_scope;
        Alcotest.test_case "strip round-trip" `Quick test_rename_roundtrip;
        Alcotest.test_case "local_names order" `Quick test_local_names_order;
      ] );
    ( "properties",
      qcheck
        [ prop_print_parse_roundtrip; prop_lower_total; prop_strip_idempotent_shape ]
    );
  ]

let () = Alcotest.run "minijs" suite
