(* The shared interning layer: dense string ids, guarded id budgets
   for the bit-packed key spaces, and hash-consing. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ---------- Strtab ---------- *)

let test_strtab_basic () =
  let t = Intern.Strtab.create () in
  check_int "first id" 0 (Intern.Strtab.intern t "alpha");
  check_int "second id" 1 (Intern.Strtab.intern t "beta");
  check_int "stable" 0 (Intern.Strtab.intern t "alpha");
  check_int "size" 2 (Intern.Strtab.size t);
  check_str "reverse" "beta" (Intern.Strtab.to_string t 1);
  check_bool "find hit" true (Intern.Strtab.find t "beta" = Some 1);
  check_bool "find miss allocates nothing" true
    (Intern.Strtab.find t "gamma" = None && Intern.Strtab.size t = 2)

let test_strtab_growth () =
  (* Far past the initial capacity: ids stay dense and reversible. *)
  let t = Intern.Strtab.create ~hint:2 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    check_int "dense id" i (Intern.Strtab.intern t (string_of_int i))
  done;
  check_int "size" n (Intern.Strtab.size t);
  for i = 0 to n - 1 do
    check_str "reverse survives growth" (string_of_int i)
      (Intern.Strtab.to_string t i)
  done;
  (* Re-interning after growth returns the original ids. *)
  check_int "stable after growth" 4242 (Intern.Strtab.intern t "4242")

let test_strtab_out_of_range () =
  let t = Intern.Strtab.create () in
  ignore (Intern.Strtab.intern t "x");
  check_bool "negative id rejected" true
    (match Intern.Strtab.to_string t (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "past-end id rejected" true
    (match Intern.Strtab.to_string t 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_strtab_snapshot () =
  let t = Intern.Strtab.create () in
  List.iter
    (fun s -> ignore (Intern.Strtab.intern t s))
    [ "a"; "b with space"; "\x1f\x00"; "d" ];
  let snap = Intern.Strtab.snapshot t in
  let t' = Intern.Strtab.of_snapshot snap in
  check_int "same size" (Intern.Strtab.size t) (Intern.Strtab.size t');
  Array.iteri
    (fun i s ->
      check_str "same id order" s (Intern.Strtab.to_string t' i);
      check_bool "lookup restored" true (Intern.Strtab.find t' s = Some i))
    snap;
  check_bool "duplicate snapshot rejected" true
    (match Intern.Strtab.of_snapshot [| "x"; "y"; "x" |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- guarded interning (packed-key budgets) ---------- *)

let test_guard_boundary () =
  let t = Intern.Strtab.create () in
  let limit = 4 in
  let g s = Intern.Strtab.intern_guarded t ~limit ~what:"test label" s in
  for i = 0 to limit - 1 do
    check_int "ids below the limit" i (g (string_of_int i))
  done;
  (* Existing strings re-intern fine even when the budget is full. *)
  check_int "re-intern at the boundary" 2 (g "2");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "one past the limit fails" true
    (match g "overflow" with
    | exception Failure msg ->
        (* The message must name the id space and the budget. *)
        contains msg "test label" && contains msg "4"
    | _ -> false);
  check_int "failed intern allocates no id" limit (Intern.Strtab.size t)

let test_symbols_label_boundary () =
  (* The real CRF budget: label ids must fit the 18-bit field of the
     packed pairwise key. Interning 2^18 labels succeeds; one more
     distinct label must fail with the diagnostic, not wrap. *)
  let syms = Crf.Symbols.create () in
  let n = 1 lsl 18 in
  for i = 0 to n - 1 do
    ignore (Crf.Symbols.label syms ("l" ^ string_of_int i))
  done;
  check_int "full budget interned" n (Crf.Symbols.num_labels syms);
  check_bool "existing label still resolves" true
    (Crf.Symbols.find_label syms "l0" = Some 0);
  check_bool "2^18-th distinct label fails" true
    (match Crf.Symbols.label syms "one too many" with
    | exception Failure _ -> true
    | _ -> false);
  (* Relations share the guard with a 24-bit budget; exercise the
     mechanism (the full 16M-id sweep is too slow for a unit test). *)
  check_int "rel ids independent" 0 (Crf.Symbols.rel syms "r0")

(* ---------- Hashcons ---------- *)

let key_hash (a : int array) = Hashtbl.hash a

let probe_key t (k : int array) =
  Intern.Hashcons.probe t ~hash:(key_hash k)
    ~equal:(fun id -> Intern.Hashcons.get t id = k)
    ~build:(fun () -> k)

let test_hashcons_dedup () =
  let t = Intern.Hashcons.create () in
  let id1 = probe_key t [| 1; 2; 3 |] in
  let id2 = probe_key t [| 1; 2; 3 |] in
  let id3 = probe_key t [| 1; 2; 4 |] in
  check_int "same value, same id" id1 id2;
  check_bool "distinct value, distinct id" true (id2 <> id3);
  check_int "two distinct values stored" 2 (Intern.Hashcons.size t);
  check_bool "get returns the canonical value" true
    (Intern.Hashcons.get t id1 = [| 1; 2; 3 |])

let test_hashcons_build_only_on_miss () =
  let t = Intern.Hashcons.create () in
  let builds = ref 0 in
  let probe k =
    Intern.Hashcons.probe t ~hash:(key_hash k)
      ~equal:(fun id -> Intern.Hashcons.get t id = k)
      ~build:(fun () ->
        incr builds;
        k)
  in
  ignore (probe [| 7 |]);
  ignore (probe [| 7 |]);
  ignore (probe [| 7 |]);
  ignore (probe [| 8 |]);
  check_int "build called once per distinct value" 2 !builds

let test_hashcons_growth () =
  let t = Intern.Hashcons.create ~hint:2 () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    check_int "dense ids" i (probe_key t [| i; i * 2 |])
  done;
  check_int "size" n (Intern.Hashcons.size t);
  (* Every stored value still reachable by re-probe after growth. *)
  check_int "re-probe after growth" 1234 (probe_key t [| 1234; 2468 |]);
  let seen = ref 0 in
  Intern.Hashcons.iter
    (fun id v ->
      if v.(0) <> id then Alcotest.failf "iter out of id order at %d" id;
      incr seen)
    t;
  check_int "iter covers all" n !seen

let () =
  Alcotest.run "intern"
    [
      ( "strtab",
        [
          Alcotest.test_case "basic interning" `Quick test_strtab_basic;
          Alcotest.test_case "growth" `Quick test_strtab_growth;
          Alcotest.test_case "out-of-range ids" `Quick test_strtab_out_of_range;
          Alcotest.test_case "snapshot round-trip" `Quick test_strtab_snapshot;
        ] );
      ( "guards",
        [
          Alcotest.test_case "guard boundary" `Quick test_guard_boundary;
          Alcotest.test_case "symbols 18-bit label budget" `Quick
            test_symbols_label_boundary;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "dedup" `Quick test_hashcons_dedup;
          Alcotest.test_case "build only on miss" `Quick
            test_hashcons_build_only_on_miss;
          Alcotest.test_case "growth" `Quick test_hashcons_growth;
        ] );
    ]
