(* Out-of-core training: shard-set round-trips, bounded vocab
   counting, streaming-vs-in-memory ingestion, and — the property the
   whole subsystem exists for — bit-exact checkpoint/resume of both
   trainers from every shard boundary. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pigeon-oocore-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let mk_node id gold kind = { Crf.Graph.id; gold; kind }

(* Awkward strings on purpose: the shard string table must carry
   anything a real path abstraction produces. *)
let graphs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  List.init n (fun _ ->
      if Random.State.bool rng then
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "done"; "stop"; "flag" ]) `Unknown;
              mk_node 1 "hello, world %20" `Known;
              mk_node 2 (pick [ "i"; "j" ]) `Unknown;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1
                ~rel:"SymbolRef\xe2\x86\x91While\xe2\x86\x93True";
              Crf.Graph.pairwise ~a:0 ~b:2 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.pairwise ~a:0 ~b:2 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.unary ~n:0 ~rel:"loop guard";
            ]
      else
        Crf.Graph.make
          ~nodes:
            [
              mk_node 0 (pick [ "count"; "total"; "sum" ]) `Unknown;
              mk_node 1 "0" `Known;
            ]
          ~factors:
            [
              Crf.Graph.pairwise ~a:0 ~b:1 ~rel:"Assign=\xe2\x86\x93Number";
              Crf.Graph.unary ~n:0 ~rel:"incr\ttab";
            ])

let sgns_pairs ~n ~seed =
  let rng = Random.State.make [| seed |] in
  let words = [| "count"; "total"; "i"; "j"; "items"; "sum"; "done" |] in
  let ctxs =
    [| "Assign\x1f0"; "Ref\x1fwhile"; "Call\x1flen"; "Ref\x1fif"; "Add\x1f1" |]
  in
  List.init n (fun _ ->
      ( words.(Random.State.int rng (Array.length words)),
        ctxs.(Random.State.int rng (Array.length ctxs)) ))

(* ---------- shard sets ---------- *)

let graph_shard_set ~dir ~per_shard gs =
  let w =
    Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Graphs
      ~records_per_shard:per_shard ()
  in
  List.iter
    (fun g ->
      Corpus.Shard.add_graph w
        (Pigeon.Task.rec_of_graph ~intern:(Corpus.Shard.intern w) g))
    gs;
  Corpus.Shard.finish w

let test_graph_shard_roundtrip () =
  let gs = graphs ~n:37 ~seed:11 in
  with_temp_dir (fun dir ->
      let set = graph_shard_set ~dir ~per_shard:10 gs in
      check_int "shard count" 4 (Corpus.Shard.n_shards set);
      check_int "total records" 37 (Corpus.Shard.total set);
      let back =
        List.concat
          (List.init (Corpus.Shard.n_shards set) (fun s ->
               Pigeon.Task.graphs_of_shard set s))
      in
      check_bool "graphs round-trip structurally" true (back = gs);
      (* a fresh open of the finished set reads the same graphs *)
      let set2 = Corpus.Shard.open_set dir in
      check_bool "reopened set reads identically" true
        (List.concat
           (List.init (Corpus.Shard.n_shards set2) (fun s ->
                Pigeon.Task.graphs_of_shard set2 s))
        = gs))

let test_pair_shard_roundtrip () =
  let pairs = sgns_pairs ~n:200 ~seed:3 in
  with_temp_dir (fun dir ->
      let w =
        Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Pairs
          ~records_per_shard:64 ()
      in
      List.iter
        (fun (a, b) ->
          Corpus.Shard.add_pair w (Corpus.Shard.intern w a)
            (Corpus.Shard.intern w b))
        pairs;
      let set = Corpus.Shard.finish w in
      let back =
        List.rev
          (Corpus.Shard.fold_pairs set ~init:[] ~f:(fun acc a b ->
               (Corpus.Shard.string_of_id set a, Corpus.Shard.string_of_id set b)
               :: acc))
      in
      check_bool "pairs round-trip in order" true (back = pairs))

let test_shard_corruption_detected () =
  let gs = graphs ~n:20 ~seed:7 in
  with_temp_dir (fun dir ->
      ignore (graph_shard_set ~dir ~per_shard:8 gs);
      let shard0 = Filename.concat dir "shard-0000.psh" in
      let body = read_file shard0 in
      (* flip one byte mid-payload *)
      let mangled = Bytes.of_string body in
      let pos = Bytes.length mangled / 2 in
      Bytes.set mangled pos (Char.chr (Char.code (Bytes.get mangled pos) lxor 0x40));
      write_file shard0 (Bytes.to_string mangled);
      let set = Corpus.Shard.open_set dir in
      check_bool "bit flip surfaces as Corrupt_model" true
        (match Corpus.Shard.graphs set 0 with
        | _ -> false
        | exception Lexkit.Diag.Error d ->
            d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model);
      (* truncation too *)
      write_file shard0 (String.sub body 0 (String.length body / 2));
      let set = Corpus.Shard.open_set dir in
      check_bool "truncation surfaces as Corrupt_model" true
        (match Corpus.Shard.graphs set 0 with
        | _ -> false
        | exception Lexkit.Diag.Error d ->
            d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model))

let test_unfinished_set_reads_as_absent () =
  let gs = graphs ~n:5 ~seed:9 in
  with_temp_dir (fun dir ->
      let w =
        Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Graphs
          ~records_per_shard:2 ()
      in
      List.iter
        (fun g ->
          Corpus.Shard.add_graph w
            (Pigeon.Task.rec_of_graph ~intern:(Corpus.Shard.intern w) g))
        gs;
      (* no [finish]: a killed writer leaves no meta.psm *)
      check_bool "unfinished set is absent" false (Corpus.Shard.exists dir);
      check_bool "open_set refuses" true
        (match Corpus.Shard.open_set dir with
        | _ -> false
        | exception Lexkit.Diag.Error _ -> true))

(* ---------- bounded vocab counting ---------- *)

let test_counter_exact_under_cap () =
  let items = [ ("a", 5); ("b", 3); ("c", 2); ("d", 1) ] in
  let c = Word2vec.Vocab.Counter.create ~cap:10 () in
  List.iter (fun (w, n) -> Word2vec.Vocab.Counter.add ~count:n c w) items;
  check_int "no occurrences dropped" 0 (Word2vec.Vocab.Counter.dropped c);
  let v = Word2vec.Vocab.Counter.to_vocab c in
  check_bool "same vocabulary as unbounded counting" true
    (Word2vec.Vocab.items v = Word2vec.Vocab.items (Word2vec.Vocab.of_counts items))

let test_counter_prunes_at_cap () =
  let c = Word2vec.Vocab.Counter.create ~cap:4 () in
  (* frequent words survive; a long tail of singletons is pruned away *)
  for i = 1 to 200 do
    Word2vec.Vocab.Counter.add c ("tail" ^ string_of_int i);
    Word2vec.Vocab.Counter.add c "head1";
    Word2vec.Vocab.Counter.add c "head2"
  done;
  check_bool "table stays within cap" true (Word2vec.Vocab.Counter.size c <= 4);
  check_bool "pruning fired" true (Word2vec.Vocab.Counter.dropped c > 0);
  check_bool "floor rose" true (Word2vec.Vocab.Counter.floor c > 1);
  let v = Word2vec.Vocab.Counter.to_vocab c in
  check_bool "frequent words survive with exact counts" true
    (Word2vec.Vocab.id v "head1" <> None
    && Word2vec.Vocab.id v "head2" <> None
    &&
    match Word2vec.Vocab.id v "head1" with
    | Some i -> Word2vec.Vocab.count v i = 200
    | None -> false)

let test_counter_rejects_bad_counts () =
  let c = Word2vec.Vocab.Counter.create () in
  check_bool "negative count rejected" true
    (match Word2vec.Vocab.Counter.add ~count:(-1) c "x" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Word2vec.Vocab.Counter.add ~count:0 c "x";
  check_int "zero count adds nothing" 0 (Word2vec.Vocab.Counter.size c)

let test_of_counts_cap_matches_counter () =
  let items = List.map (fun (w, c) -> (w, c)) [ ("x", 9); ("y", 4); ("z", 1) ] in
  let a = Word2vec.Vocab.of_counts ~cap:16 items in
  let b = Word2vec.Vocab.of_counts items in
  check_bool "capped path equals unbounded when nothing prunes" true
    (Word2vec.Vocab.items a = Word2vec.Vocab.items b)

let test_of_items_identity () =
  let items = [ ("b", 7); ("a", 7); ("c", 1) ] in
  let v = Word2vec.Vocab.of_items items in
  check_bool "ids follow list order exactly" true
    (Word2vec.Vocab.items v = items);
  check_bool "duplicate word rejected" true
    (match Word2vec.Vocab.of_items [ ("a", 1); ("a", 2) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- atomic writes ---------- *)

let test_atomic_gen_cleans_up_on_raise () =
  with_temp_dir (fun dir ->
      let target = Filename.concat dir "out.bin" in
      write_file target "previous contents";
      check_bool "writer exception propagates" true
        (match
           Lexkit.write_file_atomic_gen target (fun oc ->
               output_string oc "partial";
               failwith "mid-write failure")
         with
        | () -> false
        | exception Failure _ -> true);
      check_bool "target untouched" true (read_file target = "previous contents");
      check_int "no temp file left behind" 1 (Array.length (Sys.readdir dir)))

(* ---------- streaming ingestion ---------- *)

let test_ingest_stream_matches_run () =
  let sources =
    List.init 23 (fun i ->
        (Printf.sprintf "f%d.x" i, Printf.sprintf "body %d" i))
  in
  let f _name src = String.length src in
  let direct, rep_run = Pigeon.Ingest.run ~f sources in
  let streamed = ref [] in
  let rep_stream =
    Pigeon.Ingest.stream ~batch:5 ~f
      ~emit:(fun v -> streamed := v :: !streamed)
      sources
  in
  check_bool "same results in the same order" true
    (List.rev !streamed = direct);
  check_int "same attempted" rep_run.Pigeon.Ingest.attempted
    rep_stream.Pigeon.Ingest.attempted;
  check_int "same succeeded" rep_run.Pigeon.Ingest.succeeded
    rep_stream.Pigeon.Ingest.succeeded

(* ---------- CRF checkpoint/resume ---------- *)

let crf_config =
  { Crf.Train.default_config with Crf.Train.iterations = 3 }

let crf_stream_model ?from ?on_shard set =
  Crf.Train.train_of_shards ~config:crf_config
    ~n_shards:(Corpus.Shard.n_shards set)
    ~graphs_of_shard:(Pigeon.Task.graphs_of_shard set)
    ?from ?on_shard ()

let test_crf_resume_every_boundary () =
  let gs = graphs ~n:24 ~seed:21 in
  with_temp_dir (fun dir ->
      let set = graph_shard_set ~dir ~per_shard:9 gs in
      let n_shards = Corpus.Shard.n_shards set in
      let golden = Crf.Serialize.to_string (crf_stream_model set) in
      (* capture a checkpoint image at every shard boundary *)
      let ckpts = ref [] in
      ignore
        (crf_stream_model set
           ~on_shard:(fun ~it ~shard m ->
             let next_it, next_shard =
               if shard + 1 = n_shards then (it + 1, 0) else (it, shard + 1)
             in
             ckpts :=
               Crf.Serialize.checkpoint_to_string ~config:crf_config ~next_it
                 ~next_shard ~n_shards ~jobs:1 m
               :: !ckpts));
      check_int "one checkpoint per (iteration, shard)"
        (crf_config.Crf.Train.iterations * n_shards)
        (List.length !ckpts);
      List.iter
        (fun image ->
          let ck =
            match Crf.Serialize.checkpoint_of_string image with
            | Ok ck -> ck
            | Error d -> Alcotest.failf "checkpoint: %a" Lexkit.Diag.pp d
          in
          let resumed =
            crf_stream_model set
              ~from:
                ( ck.Crf.Serialize.ck_fast,
                  ck.Crf.Serialize.ck_next_it,
                  ck.Crf.Serialize.ck_next_shard )
          in
          check_bool "resumed model byte-identical" true
            (Crf.Serialize.to_string resumed = golden))
        !ckpts)

let test_crf_checkpoint_corruption_detected () =
  let gs = graphs ~n:10 ~seed:2 in
  with_temp_dir (fun dir ->
      let set = graph_shard_set ~dir ~per_shard:5 gs in
      let image = ref "" in
      ignore
        (crf_stream_model set ~on_shard:(fun ~it ~shard m ->
             if !image = "" then
               image :=
                 Crf.Serialize.checkpoint_to_string ~config:crf_config
                   ~next_it:it ~next_shard:(shard + 1)
                   ~n_shards:(Corpus.Shard.n_shards set) ~jobs:1 m));
      let image = !image in
      check_bool "pristine image loads" true
        (Result.is_ok (Crf.Serialize.checkpoint_of_string image));
      List.iter
        (fun pos ->
          let b = Bytes.of_string image in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
          match Crf.Serialize.checkpoint_of_string (Bytes.to_string b) with
          | Ok _ -> Alcotest.failf "bit flip at %d accepted" pos
          | Error d ->
              check_bool "flip reported as Corrupt_model" true
                (d.Lexkit.Diag.kind = Lexkit.Diag.Corrupt_model))
        [ 0; String.length image / 3; String.length image / 2;
          String.length image - 1 ];
      check_bool "truncation rejected" true
        (Result.is_error
           (Crf.Serialize.checkpoint_of_string
              (String.sub image 0 (String.length image / 2)))))

(* ---------- SGNS checkpoint/resume ---------- *)

let sgns_config =
  {
    Word2vec.Sgns.default_config with
    Word2vec.Sgns.dim = 8;
    epochs = 3;
    min_count = 2;
  }

let pair_plan ~dir ~per_shard pairs =
  let w =
    Corpus.Shard.create_writer ~dir ~kind:Corpus.Shard.Pairs
      ~records_per_shard:per_shard ()
  in
  List.iter
    (fun (a, b) ->
      Corpus.Shard.add_pair w (Corpus.Shard.intern w a) (Corpus.Shard.intern w b))
    pairs;
  let set = Corpus.Shard.finish w in
  Pigeon.W2v_task.plan_of_set ~min_count:sgns_config.Word2vec.Sgns.min_count set

let sgns_stream_model ?from ?on_shard (plan : Pigeon.W2v_task.plan) =
  Word2vec.Sgns.train_stream ~config:sgns_config
    ~words:plan.Pigeon.W2v_task.plan_words
    ~contexts:plan.Pigeon.W2v_task.plan_contexts
    ~shard_sizes:plan.Pigeon.W2v_task.plan_sizes
    ~pairs_of_shard:(Pigeon.W2v_task.plan_pairs plan)
    ?from ?on_shard ()

let test_sgns_resume_every_boundary () =
  with_temp_dir (fun dir ->
      let plan = pair_plan ~dir ~per_shard:60 (sgns_pairs ~n:150 ~seed:5) in
      let golden = Word2vec.Serialize.to_string (sgns_stream_model plan) in
      let ckpts = ref [] in
      ignore
        (sgns_stream_model plan ~on_shard:(fun ~epoch:_ ~shard:_ ck ->
             (* ck_w/ck_c alias the live matrices: serialize now *)
             ckpts := Word2vec.Serialize.checkpoint_to_string ck :: !ckpts));
      check_int "one checkpoint per (epoch, shard)"
        (sgns_config.Word2vec.Sgns.epochs
        * Array.length plan.Pigeon.W2v_task.plan_sizes)
        (List.length !ckpts);
      List.iter
        (fun image ->
          let ck =
            match Word2vec.Serialize.checkpoint_of_string image with
            | Ok ck -> ck
            | Error d -> Alcotest.failf "checkpoint: %a" Lexkit.Diag.pp d
          in
          check_bool "resumed model byte-identical" true
            (Word2vec.Serialize.to_string (sgns_stream_model plan ~from:ck)
            = golden))
        !ckpts)

let test_sgns_checkpoint_rejects_reshard () =
  with_temp_dir (fun dir ->
      let plan = pair_plan ~dir ~per_shard:60 (sgns_pairs ~n:150 ~seed:5) in
      let saved = ref None in
      ignore
        (sgns_stream_model plan ~on_shard:(fun ~epoch:_ ~shard:_ ck ->
             if !saved = None then
               saved := Some (Word2vec.Serialize.checkpoint_to_string ck)));
      let ck =
        match Word2vec.Serialize.checkpoint_of_string (Option.get !saved) with
        | Ok ck -> ck
        | Error d -> Alcotest.failf "checkpoint: %a" Lexkit.Diag.pp d
      in
      with_temp_dir (fun dir2 ->
          (* same pairs, different shard granularity *)
          let plan2 =
            pair_plan ~dir:dir2 ~per_shard:25 (sgns_pairs ~n:150 ~seed:5)
          in
          check_bool "resume against a re-sharded corpus is rejected" true
            (match sgns_stream_model plan2 ~from:ck with
            | _ -> false
            | exception Invalid_argument _ -> true)))

(* ---------- SIGKILL mid-checkpoint ---------- *)

(* The checkpoint file is written atomically, so a SIGKILL anywhere in
   a save leaves the previous complete checkpoint or the new one,
   never a torn file. Kill a child that checkpoints in a tight loop;
   the survivor must always load. *)
let test_sigkill_mid_checkpoint_keeps_loadable () =
  with_temp_dir (fun dir ->
      let set = graph_shard_set ~dir ~per_shard:5 (graphs ~n:10 ~seed:13) in
      let m = ref None in
      ignore
        (crf_stream_model set ~on_shard:(fun ~it:_ ~shard:_ model ->
             m := Some model));
      let model = Option.get !m in
      let path = Filename.concat dir "ck.crf" in
      let save () =
        Crf.Serialize.checkpoint_save path ~config:crf_config ~next_it:1
          ~next_shard:0 ~n_shards:(Corpus.Shard.n_shards set) ~jobs:1 model
      in
      save ();
      let golden = read_file path in
      for _round = 1 to 3 do
        (match Unix.fork () with
        | 0 ->
            (try
               while true do
                 save ()
               done
             with _ -> ());
            Unix._exit 1
        | pid ->
            ignore (Unix.select [] [] [] 0.05);
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid));
        check_bool "checkpoint loads after SIGKILL mid-save" true
          (Result.is_ok (Crf.Serialize.checkpoint_load path));
        check_bool "file holds a complete checkpoint" true
          (read_file path = golden)
      done)

let () =
  Alcotest.run "oocore"
    [
      ( "shards",
        [
          Alcotest.test_case "graph round-trip" `Quick test_graph_shard_roundtrip;
          Alcotest.test_case "pair round-trip" `Quick test_pair_shard_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_shard_corruption_detected;
          Alcotest.test_case "unfinished set reads as absent" `Quick
            test_unfinished_set_reads_as_absent;
        ] );
      ( "vocab-counter",
        [
          Alcotest.test_case "exact under cap" `Quick test_counter_exact_under_cap;
          Alcotest.test_case "prunes at cap" `Quick test_counter_prunes_at_cap;
          Alcotest.test_case "rejects bad counts" `Quick
            test_counter_rejects_bad_counts;
          Alcotest.test_case "of_counts cap path" `Quick
            test_of_counts_cap_matches_counter;
          Alcotest.test_case "of_items identity" `Quick test_of_items_identity;
        ] );
      ( "atomic-write",
        [
          Alcotest.test_case "raise mid-write cleans up" `Quick
            test_atomic_gen_cleans_up_on_raise;
        ] );
      ( "ingest-stream",
        [
          Alcotest.test_case "matches run" `Quick test_ingest_stream_matches_run;
        ] );
      ( "crf-resume",
        [
          Alcotest.test_case "bit-exact from every boundary" `Slow
            test_crf_resume_every_boundary;
          Alcotest.test_case "checkpoint corruption detected" `Quick
            test_crf_checkpoint_corruption_detected;
          Alcotest.test_case "SIGKILL mid-checkpoint keeps a loadable file"
            `Quick test_sigkill_mid_checkpoint_keeps_loadable;
        ] );
      ( "sgns-resume",
        [
          Alcotest.test_case "bit-exact from every boundary" `Slow
            test_sgns_resume_every_boundary;
          Alcotest.test_case "re-sharded corpus rejected" `Quick
            test_sgns_checkpoint_rejects_reshard;
        ] );
    ]
