(* The domain pool and every determinism contract built on it:
   Parallel.map agrees with Array.map, pools survive reuse and worker
   exceptions, and the three parallel stages (ingestion, CRF, SGNS)
   keep their promises — jobs=1 identical to sequential, fixed job
   counts reproducible, result-preserving stages identical for every
   job count. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One pool per job count, reused by every test below — which is
   itself a regression test: a pool must stay healthy across many
   batches (and across the exception test). *)
let pools = Hashtbl.create 4

let pool ~jobs =
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Parallel.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

let () = at_exit (fun () -> Hashtbl.iter (fun _ p -> Parallel.shutdown p) pools)

(* ---------- the pool itself ---------- *)

let test_chunk_ranges () =
  List.iter
    (fun (chunks, n) ->
      let ranges = Parallel.chunk_ranges ~chunks n in
      check_bool "at most chunks pieces" true (Array.length ranges <= max 1 chunks);
      let covered =
        Array.to_list ranges
        |> List.concat_map (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i))
      in
      Alcotest.(check (list int)) (Printf.sprintf "chunks=%d n=%d covers 0..n-1" chunks n)
        (List.init n Fun.id) covered)
    [ (1, 10); (3, 10); (4, 4); (7, 3); (16, 100); (5, 0) ]

let test_map_matches_array_map () =
  let f x = (x * x) + 3 in
  List.iter
    (fun jobs ->
      let arr = Array.init 257 (fun i -> i - 128) in
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d" jobs)
        (Array.map f arr)
        (Parallel.map ~pool:(pool ~jobs) f arr))
    [ 1; 2; 3; 4 ]

let prop_map_matches_array_map =
  QCheck2.Test.make ~name:"parallel: map f = Array.map f" ~count:200
    QCheck2.Gen.(pair (int_range 1 6) (list int))
    (fun (jobs, xs) ->
      let arr = Array.of_list xs in
      let f x = (2 * x) - 7 in
      Parallel.map ~pool:(pool ~jobs) f arr = Array.map f arr)

let test_pool_reuse_and_nesting () =
  let p = pool ~jobs:3 in
  (* Many batches on one pool. *)
  for round = 1 to 5 do
    let arr = Array.init (17 * round) Fun.id in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.map succ arr)
      (Parallel.map ~pool:p succ arr)
  done;
  (* A map inside a map must not deadlock: waiters help drain the
     queue before blocking. *)
  let outer =
    Parallel.map ~pool:p
      (fun k ->
        Array.fold_left ( + ) 0
          (Parallel.map ~pool:p (fun i -> (k * 10) + i) (Array.init 8 Fun.id)))
      (Array.init 6 Fun.id)
  in
  Alcotest.(check (array int)) "nested"
    (Array.init 6 (fun k -> (k * 80) + 28))
    outer

let test_exception_propagates () =
  let p = pool ~jobs:4 in
  let boom i = if i = 17 then failwith "boom" else i in
  (match Parallel.map ~pool:p boom (Array.init 64 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int)) "pool usable after failure"
    (Array.init 32 succ)
    (Parallel.map ~pool:p succ (Array.init 32 Fun.id))

let test_map_reduce () =
  let arr = Array.init 1000 Fun.id in
  let seq = Array.fold_left (fun acc x -> acc + (x * x)) 0 arr in
  List.iter
    (fun jobs ->
      check_int
        (Printf.sprintf "sum of squares jobs=%d" jobs)
        seq
        (Parallel.map_reduce ~pool:(pool ~jobs)
           ~map:(fun x -> x * x)
           ~reduce:( + ) 0 arr))
    [ 1; 4 ]

(* ---------- ingestion: identical for every job count ---------- *)

let ingest_sources =
  List.init 40 (fun i ->
      (Printf.sprintf "f%02d.src" i, String.make ((i * 13 mod 29) + 1) 'x'))

let ingest_f _name src =
  if String.length src mod 5 = 0 then failwith "length divisible by five";
  String.length src

let test_ingest_job_invariance () =
  let seq_results, seq_report =
    Pigeon.Ingest.run ~pool:(pool ~jobs:1) ~f:ingest_f ingest_sources
  in
  (* Expected values straight from the definition. *)
  let expect =
    List.filter_map
      (fun (_, src) ->
        if String.length src mod 5 = 0 then None else Some (String.length src))
      ingest_sources
  in
  Alcotest.(check (list int)) "jobs=1 results" expect seq_results;
  check_int "attempted" 40 seq_report.Pigeon.Ingest.attempted;
  List.iter
    (fun jobs ->
      let results, report =
        Pigeon.Ingest.run ~pool:(pool ~jobs) ~f:ingest_f ingest_sources
      in
      Alcotest.(check (list int))
        (Printf.sprintf "results jobs=%d" jobs)
        seq_results results;
      check_bool
        (Printf.sprintf "report jobs=%d" jobs)
        true (report = seq_report))
    [ 2; 4 ]

let test_merge_all_order () =
  let skip name =
    {
      Pigeon.Ingest.file = name;
      bytes = 1;
      diag = Lexkit.Diag.make Lexkit.Diag.Parse_error "x";
    }
  in
  let r name =
    { Pigeon.Ingest.attempted = 2; succeeded = 1; skipped = [ skip name ] }
  in
  let merged = Pigeon.Ingest.merge_all [ r "a"; r "b"; r "c" ] in
  check_int "attempted" 6 merged.Pigeon.Ingest.attempted;
  check_int "succeeded" 3 merged.Pigeon.Ingest.succeeded;
  Alcotest.(check (list string)) "skip order preserved" [ "a"; "b"; "c" ]
    (List.map (fun s -> s.Pigeon.Ingest.file) merged.Pigeon.Ingest.skipped)

(* ---------- end-to-end corpora ---------- *)

let corpus lang ~n ~seed =
  let config = { Corpus.Gen.default with Corpus.Gen.n_files = n; seed } in
  Corpus.Gen.generate_sources config lang

let split_of sources =
  let entries =
    List.map (fun (path, source) -> { Corpus.Dataset.path; source }) sources
  in
  let deduped = Corpus.Dataset.dedup entries in
  let s = Corpus.Dataset.split_corpus ~seed:11 deduped in
  let pairs xs =
    List.map (fun e -> (e.Corpus.Dataset.path, e.Corpus.Dataset.source)) xs
  in
  (pairs s.Corpus.Dataset.train, pairs s.Corpus.Dataset.test)

let test_extraction_job_invariance () =
  let lang = Pigeon.Lang.javascript in
  let train, _ = split_of (corpus Corpus.Render.Js ~n:30 ~seed:91) in
  let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
  let run () =
    Pigeon.Task.graphs_of_sources_report ~repr ~lang
      ~policy:Pigeon.Graphs.Locals train
    |> fun (gs, rep) -> (gs, rep.Pigeon.Ingest.succeeded)
  in
  (* graphs_of_sources_report uses the ambient pool; steer it. *)
  Parallel.set_default_jobs 1;
  let g1, n1 = run () in
  Parallel.set_default_jobs 4;
  let g4, n4 = run () in
  Parallel.set_default_jobs 1;
  check_int "same file count" n1 n4;
  check_bool "graphs identical across job counts" true (g1 = g4)

(* ---------- CRF: batch prediction and jobs=1 training golden ---------- *)

let quick_crf = { Crf.Train.default_config with Crf.Train.iterations = 3 }

let crf_fixture =
  lazy
    (let lang = Pigeon.Lang.javascript in
     let train, test = split_of (corpus Corpus.Render.Js ~n:40 ~seed:92) in
     let repr = Pigeon.Graphs.default_repr ~config:lang.Pigeon.Lang.tuned () in
     let graphs_of srcs =
       Pigeon.Task.graphs_of_sources ~repr ~lang ~policy:Pigeon.Graphs.Locals
         srcs
     in
     (graphs_of train, graphs_of test))

let test_predict_batch_job_invariance () =
  let train_graphs, test_graphs = Lazy.force crf_fixture in
  let model = Crf.Train.train ~config:quick_crf train_graphs in
  let seq = List.map (Crf.Train.predict model) test_graphs in
  List.iter
    (fun jobs ->
      let batch =
        Crf.Train.predict_batch ~pool:(pool ~jobs) model test_graphs
      in
      check_bool
        (Printf.sprintf "predict_batch jobs=%d = predict" jobs)
        true (batch = seq))
    [ 1; 4 ];
  (* accuracy goes through the same batch path *)
  let acc_seq = Crf.Train.accuracy ~pool:(pool ~jobs:1) model test_graphs in
  let acc_par = Crf.Train.accuracy ~pool:(pool ~jobs:4) model test_graphs in
  Alcotest.(check (float 0.)) "accuracy job-invariant" acc_seq acc_par

let test_crf_train_jobs1_golden () =
  let train_graphs, test_graphs = Lazy.force crf_fixture in
  let m_seq = Crf.Train.train ~config:quick_crf train_graphs in
  let m_one =
    Crf.Train.train ~pool:(pool ~jobs:1) ~config:quick_crf train_graphs
  in
  check_bool "jobs=1 model predicts identically to sequential" true
    (List.map (Crf.Train.predict m_one) test_graphs
    = List.map (Crf.Train.predict m_seq) test_graphs);
  Alcotest.(check (float 0.))
    "jobs=1 accuracy identical"
    (Crf.Train.accuracy m_seq test_graphs)
    (Crf.Train.accuracy m_one test_graphs)

let test_crf_train_parallel_reproducible () =
  let train_graphs, test_graphs = Lazy.force crf_fixture in
  let run () =
    let m =
      Crf.Train.train ~pool:(pool ~jobs:4) ~config:quick_crf train_graphs
    in
    List.map (Crf.Train.predict m) test_graphs
  in
  check_bool "two jobs=4 runs agree" true (run () = run ());
  (* And the parallel trainer still learns: sanity-check accuracy. *)
  let m = Crf.Train.train ~pool:(pool ~jobs:4) ~config:quick_crf train_graphs in
  let acc = Crf.Train.accuracy m test_graphs in
  check_bool (Printf.sprintf "jobs=4 accuracy %.2f > 0.2" acc) true (acc > 0.2)

(* ---------- SGNS ---------- *)

let sgns_pairs =
  List.init 3000 (fun i ->
      ( Printf.sprintf "w%d" (i * 11 mod 37),
        Printf.sprintf "c%d" (i * 7 mod 53) ))

let sgns_config =
  { Word2vec.Sgns.default_config with Word2vec.Sgns.epochs = 3; dim = 16 }

let vectors m = (m.Word2vec.Sgns.word_vecs, m.Word2vec.Sgns.context_vecs)

let test_sgns_jobs1_golden () =
  let seq = Word2vec.Sgns.train ~config:sgns_config sgns_pairs in
  let one =
    Word2vec.Sgns.train ~pool:(pool ~jobs:1) ~mode:Word2vec.Sgns.Deterministic
      ~config:sgns_config sgns_pairs
  in
  check_bool "jobs=1 bitwise-identical to sequential" true
    (vectors one = vectors seq)

let test_sgns_deterministic_reproducible () =
  let run () =
    vectors
      (Word2vec.Sgns.train ~pool:(pool ~jobs:4)
         ~mode:Word2vec.Sgns.Deterministic ~config:sgns_config sgns_pairs)
  in
  check_bool "two deterministic jobs=4 runs bitwise-equal" true (run () = run ())

let finite_vecs (ws, cs) =
  Array.for_all (Array.for_all Float.is_finite) ws
  && Array.for_all (Array.for_all Float.is_finite) cs

let test_sgns_hogwild_trains () =
  let m =
    Word2vec.Sgns.train ~pool:(pool ~jobs:4) ~mode:Word2vec.Sgns.Hogwild
      ~config:sgns_config sgns_pairs
  in
  check_bool "hogwild vectors finite" true (finite_vecs (vectors m));
  check_int "vocab intact" 37 (Word2vec.Vocab.size m.Word2vec.Sgns.words)

let test_vocab_of_counts_matches_build () =
  let tokens = List.init 500 (fun i -> Printf.sprintf "t%d" (i * 3 mod 41)) in
  let freq = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Hashtbl.replace freq t
        (1 + Option.value (Hashtbl.find_opt freq t) ~default:0))
    tokens;
  let built = Word2vec.Vocab.build ~min_count:2 tokens in
  let counted =
    Word2vec.Vocab.of_counts ~min_count:2
      (Hashtbl.fold (fun w c acc -> (w, c) :: acc) freq [])
  in
  Alcotest.(check (list (pair string int)))
    "same items in same id order"
    (Word2vec.Vocab.items built)
    (Word2vec.Vocab.items counted)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "chunk ranges cover exactly" `Quick
            test_chunk_ranges;
          Alcotest.test_case "map matches Array.map" `Quick
            test_map_matches_array_map;
          Alcotest.test_case "pool reuse and nested maps" `Quick
            test_pool_reuse_and_nesting;
          Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          QCheck_alcotest.to_alcotest prop_map_matches_array_map;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "job-invariant results and report" `Quick
            test_ingest_job_invariance;
          Alcotest.test_case "merge_all keeps order" `Quick
            test_merge_all_order;
          Alcotest.test_case "extraction job-invariant" `Quick
            test_extraction_job_invariance;
        ] );
      ( "crf",
        [
          Alcotest.test_case "predict_batch job-invariant" `Quick
            test_predict_batch_job_invariance;
          Alcotest.test_case "jobs=1 training golden" `Quick
            test_crf_train_jobs1_golden;
          Alcotest.test_case "jobs=4 training reproducible" `Quick
            test_crf_train_parallel_reproducible;
        ] );
      ( "sgns",
        [
          Alcotest.test_case "jobs=1 bitwise golden" `Quick
            test_sgns_jobs1_golden;
          Alcotest.test_case "deterministic mode reproducible" `Quick
            test_sgns_deterministic_reproducible;
          Alcotest.test_case "hogwild trains" `Quick test_sgns_hogwild_trains;
          Alcotest.test_case "vocab of_counts = build" `Quick
            test_vocab_of_counts_matches_build;
        ] );
    ]
